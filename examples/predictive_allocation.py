#!/usr/bin/env python
"""Predicting allocation size from small-scale section measurements.

The paper closes with the allocation question: *"Users are given
resources, sometimes virtually unlimited when compared to their actual
needs... an execution configuration where the main computing section is
beyond its inflexion point should never be ran."*  This example answers
it *before* the big run: fit per-section power laws on a cheap sweep
(p ≤ 16), extrapolate Eq. 5/6, and recommend how many cores are worth
requesting — then verify the prediction against actual (simulated)
measurements at the large scales.

Run:  python examples/predictive_allocation.py
(REPRO_EXAMPLE_FAST=1 shrinks the run to CI-smoke scale, seconds.)
"""

import os

from repro.core.models import SectionScalingModel, fit_usl_profile
from repro.core.report import format_dict_rows
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine import nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
TRAIN_MAX_SCALE = 8 if FAST else 16
VALIDATION_SCALES = (16, 32) if FAST else (32, 64, 128, 192)

if __name__ == "__main__":
    if FAST:
        sweep = ConvolutionSweep(
            config=ConvolutionConfig(height=96, width=144, steps=10),
            machine=nehalem_cluster(nodes=4),
            process_counts=(1, 2, 4, 8, 16, 32),
            reps=1,
            noise_floor=80e-6,
        )
    else:
        sweep = ConvolutionSweep(
            config=ConvolutionConfig(height=288, width=432, steps=60),
            machine=nehalem_cluster(nodes=24),
            process_counts=(1, 2, 4, 8, 16, 32, 64, 128, 192),
            reps=2,
            noise_floor=80e-6,
        )
    print("running the sweep (small scales train the model, large ones "
          "validate it)...")
    profile = run_convolution_sweep(sweep)

    model = SectionScalingModel.fit_profile(profile, max_scale=TRAIN_MAX_SCALE)
    print("\nfitted per-section power laws  T(p) = a/p^b + c :")
    print(format_dict_rows([
        {"section": lab, "a": f.a, "b": f.b, "floor_c": f.c,
         "scales_ideally": f.scales_ideally}
        for lab, f in sorted(model.fits.items())
    ]))

    rows = []
    for p in VALIDATION_SCALES:
        rows.append({
            "p": p,
            "predicted_speedup": model.speedup(p),
            "measured_speedup": profile.speedup(p),
            "predicted_binding": model.binding_section(p)[0],
        })
    print()
    print(format_dict_rows(
        rows,
        title=f"extrapolation (model fitted on p <= {TRAIN_MAX_SCALE} only)"))

    p_sat = model.saturation_scale(gain_threshold=0.05)
    print(f"\nrecommendation: request ~{p_sat} cores — past that, doubling "
          f"the allocation buys < 5 % more speedup")
    print(f"predicted speedup ceiling (sum of section floors): "
          f"{model.asymptotic_speedup():.1f}x")

    usl = fit_usl_profile(profile)
    if usl.retrograde:
        print(f"USL cross-check: sigma={usl.sigma:.3f}, kappa={usl.kappa:.2e} "
              f"→ peak ~{usl.peak_speedup:.1f}x at p ~ {usl.peak_scale:.0f}")
    else:
        print(f"USL cross-check: sigma={usl.sigma:.3f}, no retrograde term")
