#!/usr/bin/env python
"""The paper's Section 5.2 study: MPI+OpenMP LULESH on KNL vs Broadwell.

Runs the LULESH-like hydro proxy over an MPI×OpenMP grid on both machine
models, characterising OpenMP scaling *purely from MPI-level section
instrumentation* — the paper's headline demonstration — and locates the
inflexion point with its partial speedup bounds (Figure 10).

Run:  python examples/lulesh_hybrid.py
(REPRO_EXAMPLE_FAST=1 shrinks the run to CI-smoke scale, seconds.)
"""

import os

from repro.core.report import format_dict_rows
from repro.harness import experiments as E
from repro.harness.runner import run_lulesh_grid
from repro.harness.sweeps import LuleshGridSweep
from repro.machine import broadwell_duo, knl_node
from repro.tools import AdaptiveAdvisor
from repro.workloads.lulesh import LuleshConfig

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
# p=1/8/27 must stay in both grids: fig8/9/10 read those MPI levels.
CONFIG = LuleshConfig(s=12, steps=2) if FAST else LuleshConfig(s=24, steps=8)
KNL_GRID = (
    {1: (1, 2, 4, 8), 8: (1, 2), 27: (1, 2)} if FAST else
    {1: (1, 2, 4, 8, 16, 24, 32, 64, 128), 8: (1, 2, 4, 8, 16),
     27: (1, 2, 4, 8)}
)
BDW_GRID = (
    # fig8 compares w(8,1) with w(1,8): keep 8 threads at p=1.
    {1: (1, 2, 4, 8), 8: (1, 2), 27: (1, 2)} if FAST else
    {1: (1, 2, 4, 8, 16, 32, 64), 8: (1, 2, 4, 8), 27: (1, 2)}
)


def run_machine(name, machine, grid):
    sweep = LuleshGridSweep(
        config=CONFIG,  # 13 824 elements at p=1 (1 728 under FAST)
        machine=machine,
        grid=grid,
        reps=1,
    )
    print(f"== {name}: {machine.node.physical_cores} cores x "
          f"{machine.node.core.hw_threads} HT ==")
    analysis, drifts = run_lulesh_grid(sweep)
    print(f"energy drift across all configurations: "
          f"max {max(drifts.values()):.2e} (conservation check)\n")
    return analysis


if __name__ == "__main__":
    knl = run_machine("Intel KNL", knl_node(), KNL_GRID)
    bdw = run_machine("dual Broadwell", broadwell_duo(), BDW_GRID)

    print(E.fig8(bdw).render())
    print()
    print(E.fig9(knl).render())
    print()
    fig10 = E.fig10(knl)
    print(fig10.render())
    print()

    # Section 8 future work: restrain parallelism per section.
    curves = {lab: knl.section_series(lab, 1)
              for lab in ("LagrangeNodal", "LagrangeElements")}
    adv = AdaptiveAdvisor(curves)
    uniform = max(knl.thread_counts(1))
    plans = adv.plan(uniform)
    print(format_dict_rows(
        [{"section": p.label, "best_threads": p.best_threads,
          "uniform_time": p.uniform_time, "best_time": p.best_time,
          "over_parallelised": p.over_parallelised} for p in plans],
        title=f"adaptive advisor vs a uniform {uniform}-thread team (KNL, p=1)",
    ))
    print(f"\npredicted walltime recovered by per-section thread caps: "
          f"{100 * adv.predicted_gain(uniform):.1f} %")
