#!/usr/bin/env python
"""The paper's Section 5.1 study, end to end, at example scale.

Runs the instrumented convolution benchmark over a strong-scaling sweep
on the modeled Nehalem cluster, then prints the four Figure 5 views and
the Figure 6 bound table.  A smaller image / fewer steps than the
benchmark harness keeps this under a minute.

Run:  python examples/convolution_scaling.py
(REPRO_EXAMPLE_FAST=1 shrinks the run to CI-smoke scale, seconds.)
"""

import os

from repro.harness import experiments as E
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine import nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig


FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")


def build_sweep() -> ConvolutionSweep:
    if FAST:
        return ConvolutionSweep(
            config=ConvolutionConfig(height=64, width=96, steps=5),
            machine=nehalem_cluster(nodes=2),
            process_counts=(1, 2, 4, 8),
            reps=1,
            noise_floor=120e-6,
        )
    return ConvolutionSweep(
        config=ConvolutionConfig(height=288, width=432, steps=60),
        machine=nehalem_cluster(nodes=12),
        process_counts=(1, 2, 4, 8, 16, 32, 64, 96),
        reps=2,
        noise_floor=120e-6,
    )


if __name__ == "__main__":
    sweep = build_sweep()
    print(f"machine: {sweep.machine.name} "
          f"({sweep.machine.total_cores} cores, {sweep.ranks_per_node}/node)")
    print(f"image: {sweep.config.height}x{sweep.config.width}"
          f"x{sweep.config.channels}, {sweep.config.steps} steps, "
          f"{sweep.reps} repetitions per point\n")

    profile = run_convolution_sweep(sweep, progress=print)
    print()
    for exp in (E.fig5a, E.fig5b, E.fig5c, E.fig5d):
        result = exp(profile)
        print(result.render())
        print()

    fig6 = E.fig6(profile, (2, 4, 8) if FAST else (32, 64, 96))
    print(fig6.render())
    print()
    print("Reading the tables the way the paper does:")
    print(" * fig5a: CONVOLVE's share collapses while HALO's share grows —")
    print("   communication replaces computation as the dominant cost;")
    print(" * fig5b: the HALO total rises with p and is noisy (jitter")
    print("   accumulated over the time steps), despite the per-process")
    print("   message volume being constant in a 1-D split;")
    print(" * fig6: every HALO bound B(p) = T_seq / (T_halo/p) caps the")
    print("   measured speedup — any section bounds the whole program.")
