#!/usr/bin/env python
"""Quickstart: run an MPI_Section-instrumented program on the simulator.

This is the smallest end-to-end tour of the library:

1. write an MPI program as a ``main(ctx)`` function using the simulated
   communicator (mpi4py-flavoured API);
2. outline its phases with the paper's ``MPI_Section`` calls;
3. run it at several process counts on a modeled cluster;
4. derive the speedup and the partial speedup bounds (Eq. 6) that tell
   you *which phase* limits scaling.

Run:  python examples/quickstart.py
(REPRO_EXAMPLE_FAST=1 shrinks the run to CI-smoke scale, seconds.)
"""

import os

import numpy as np

from repro.core.analysis import ScalingAnalysis
from repro.core.profile import ScalingProfile, SectionProfile
from repro.core.report import format_dict_rows
from repro.machine import nehalem_cluster
from repro.simmpi import run_mpi, section

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
TOTAL_WORK = 400_000 if FAST else 16_000_000
PROCESS_COUNTS = (1, 2, 4, 8) if FAST else (1, 2, 4, 8, 16, 32, 64)


def main(ctx):
    """A toy application: parallel matrix work plus a serial summary.

    The ``summary`` phase runs only on rank 0 (everyone else waits in
    the section), so it caps the speedup exactly as Eq. 6 predicts.
    """
    comm = ctx.comm
    n = TOTAL_WORK // comm.size  # strong scaling: fixed global work

    with section(ctx, "compute"):
        offset = comm.rank * n
        local = np.arange(offset, offset + n, dtype=np.float64)
        partial = float(local.sum())
        ctx.compute(flops=5.0 * n)  # charge modeled time for the work

    with section(ctx, "reduce"):
        total = comm.reduce(partial, root=0)

    with section(ctx, "summary"):
        if comm.rank == 0:
            ctx.compute(seconds=0.002)  # serial post-processing
        comm.barrier()
    return total


if __name__ == "__main__":
    machine = nehalem_cluster(nodes=8)
    profile = ScalingProfile("p")

    for p in PROCESS_COUNTS:
        result = run_mpi(p, main, machine=machine, seed=42)
        profile.add(p, SectionProfile.from_run(result))
        print(f"p={p:3d}  walltime={result.walltime*1e3:8.3f} ms  "
              f"result={result.rank_result(0):.3e}")

    analysis = ScalingAnalysis(profile)
    print()
    print(format_dict_rows(analysis.speedup_rows(bound_label="summary"),
                           title="measured speedup + bound from the serial 'summary' phase"))
    print()
    binding = analysis.binding_sections()
    worst = binding[max(binding)]
    print(f"At p={max(binding)}, the binding section is {worst.label!r}: "
          f"it alone caps the speedup at {worst.bound:.1f}x (Eq. 6).")
