#!/usr/bin/env python
"""Drive the repro analysis service end to end from a client's seat.

The service (``python -m repro.cli serve``) turns the simulation harness
into an asynchronous analysis server: clients POST JSON job specs, poll
or stream progress, and fetch derived artifacts (speedup tables, bound
reports) without ever importing the harness.  This example:

1. connects to a running server — or, with no ``--url``, boots one
   in-process on an ephemeral port;
2. submits a convolution scaling sweep with an injected straggler rank
   (a ``FaultPlan`` travelling inside the job spec);
3. streams the runner's progress lines as the sweep executes;
4. fetches the speedup rows and the partial-bound report (Eq. 6);
5. resubmits the identical spec to show the warm registry path
   (HTTP 200, zero simulations);
6. scrapes ``/metrics`` and prints the service counters.

Run:  python examples/service_client.py [--url http://host:port]
(REPRO_EXAMPLE_FAST=1 shrinks the job to CI-smoke scale, seconds.)

Used by CI as the service smoke driver — it exits non-zero if any step
misbehaves.
"""

import argparse
import os
import sys

from repro.service.client import ServiceClient

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")

JOB_SPEC = {
    "kind": "convolution",
    "client": "example",
    "workload": ({"height": 64, "width": 96, "steps": 5} if FAST else
                 {"height": 128, "width": 192, "steps": 10}),
    "machine": {"name": "nehalem", "nodes": 4},
    "process_counts": [1, 2, 4] if FAST else [1, 2, 4, 8],
    "reps": 1,
    "base_seed": 42,
    "faults": {
        "seed": 7,
        "faults": [{"kind": "straggler", "rank": 0, "factor": 1.5}],
    },
}


def drive(url: str) -> int:
    """Run the whole client workflow against ``url``; 0 on success."""
    client = ServiceClient(url)
    health = client.health()
    print(f"server at {url} is up (uptime {health['uptime']:.1f}s)")

    receipt = client.submit(JOB_SPEC)
    job_id = receipt["job_id"]
    print(f"submitted job {job_id[:12]}… ({receipt['status']})")

    for line in client.stream_progress(job_id):
        print(f"  progress: {line}")
    record = client.wait(job_id, timeout=300)
    if record["status"] != "done":
        print(f"job ended {record['status']}: {record.get('error')}",
              file=sys.stderr)
        return 1
    print(f"job done in {record['duration']:.2f}s")

    speedup = client.artifact(job_id, "speedup")
    print("\nspeedup rows (straggler on rank 0):")
    for row in speedup["rows"]:
        print(f"  p={row['p']:<3d} S={row['speedup']:6.2f} "
              f"E={row['efficiency']:6.2f}")

    print("\npartial-bound report:")
    print(client.artifact(job_id, "report"))

    warm = client.submit(JOB_SPEC)
    if not warm.get("cached"):
        print("expected the resubmit to be served from the registry",
              file=sys.stderr)
        return 1
    print("resubmit answered from the experiment registry (zero simulations)")

    print("\nservice counters:")
    for line in client.metrics_text().splitlines():
        if line.startswith("repro_jobs_") or line.startswith("repro_registry_"):
            print(f"  {line}")
    return 0


def main() -> int:
    """Parse arguments, boot a local server if needed, and drive it."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="base URL of a running server "
                             "(default: boot one in-process)")
    args = parser.parse_args()

    if args.url:
        return drive(args.url)

    import tempfile

    from repro.service.api import ServiceApp
    from repro.service.server import ServiceServer

    with tempfile.TemporaryDirectory(prefix="repro-service-") as cache_dir:
        server = ServiceServer(ServiceApp(cache_dir=cache_dir, workers=2))
        server.start()
        print(f"booted in-process server on {server.url}")
        try:
            return drive(server.url)
        finally:
            server.stop()


if __name__ == "__main__":
    sys.exit(main())
