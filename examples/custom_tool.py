#!/usr/bin/env python
"""Writing a PMPI tool against the MPI_Section callback interface.

The paper's point is that *any* tool can consume section semantics
through two standardised callbacks (Figure 2) without linking against a
specific profiler.  This example builds a small custom tool — a
"section latecomer detector" that flags the rank entering each section
last, using the runtime-preserved 32-byte data blob to carry its own
state — and runs it together with the built-in trace tool to produce a
Figure 3-style load-balance report.

Run:  python examples/custom_tool.py
(REPRO_EXAMPLE_FAST=1 shrinks the run to CI-smoke scale, seconds.)
"""

import os
import struct

import numpy as np

from repro.core.report import format_dict_rows
from repro.machine import nehalem_cluster
from repro.simmpi import Tool, run_mpi, section
from repro.tools import TraceTool, analyze_load_balance, render_timeline

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
STEPS = 3 if FAST else 10
FLOPS_PER_STEP = 1e6 if FAST else 1e7


class LatecomerDetector(Tool):
    """Counts, per section label, how often each rank entered last.

    Demonstrates the Figure 2 contract: state stashed into the data blob
    at enter is intact at leave, and events arrive with virtual
    timestamps a tool can correlate across ranks.
    """

    def __init__(self):
        self._open = {}  # (comm_id, label) -> (last_rank, last_t, count_in)
        self.last_counts = {}  # (label, rank) -> times this rank was last in

    def section_enter_cb(self, comm_id, label, data, rank, t):
        struct.pack_into("<d", data, 0, t)  # stash my entry time
        key = (comm_id, label)
        last_rank, last_t, n = self._open.get(key, (rank, t, 0))
        if t >= last_t:
            last_rank, last_t = rank, t
        self._open[key] = (last_rank, last_t, n + 1)

    def section_leave_cb(self, comm_id, label, data, rank, t):
        (t_in,) = struct.unpack_from("<d", data, 0)
        assert t >= t_in, "blob was not preserved!"
        key = (comm_id, label)
        if key in self._open:
            last_rank, _, n = self._open[key]
            if n > 0:  # close the instance on its first leave
                self.last_counts[(label, last_rank)] = (
                    self.last_counts.get((label, last_rank), 0) + 1
                )
                self._open.pop(key)


def application(ctx):
    """Imbalanced domain: rank 'size-1' carries extra work every step."""
    comm = ctx.comm
    data = np.full(50_000, float(comm.rank))
    for _ in range(STEPS):
        with section(ctx, "assemble"):
            extra = 3.0 if comm.rank == comm.size - 1 else 1.0
            ctx.compute(flops=FLOPS_PER_STEP * extra)
        with section(ctx, "exchange"):
            peer = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            comm.sendrecv(data[:64], dest=peer, source=src)
    comm.barrier()


if __name__ == "__main__":
    detector = LatecomerDetector()
    tracer = TraceTool()
    result = run_mpi(8, application, machine=nehalem_cluster(nodes=1),
                     tools=[detector, tracer], compute_jitter=0.02, seed=3)

    print(render_timeline(result.section_events, width=64))
    print()

    rows = [
        {"section": label, "rank": rank, "times_last_in": n}
        for (label, rank), n in sorted(detector.last_counts.items())
    ]
    print(format_dict_rows(rows, title="latecomer detector (custom tool)"))
    print()

    reports = analyze_load_balance(tracer.coarse_view())
    print(format_dict_rows(
        [{"section": r.label, "instances": r.instances,
          "mean_imbalance": r.mean_imbalance, "wasted_time": r.wasted_time,
          "balance_ratio": r.balance_ratio} for r in reports],
        title="Figure 3 load-balance report (built-in trace tool)",
    ))
    print("\nThe 'assemble' section's overloaded rank shows up in both "
          "views without any application-specific tooling — exactly the "
          "paper's argument for standardising section callbacks at MPI level.")
