#!/usr/bin/env python
"""Lattice-Boltzmann channel flow under the section lens.

The paper motivates its convolution benchmark by its proximity to
Lattice-Boltzmann methods; this example runs a real D2Q9 LBM channel
flow on the simulator, prints the developed Poiseuille profile (an
ASCII plot — the physics is real), and then applies exactly the same
section-based scaling analysis as the convolution study, showing the
methodology transfers unchanged to a different stencil code.

Run:  python examples/lbm_flow.py
(REPRO_EXAMPLE_FAST=1 shrinks the run to CI-smoke scale, seconds.)
"""

import os

from repro.core.analysis import ScalingAnalysis
from repro.core.profile import ScalingProfile, SectionProfile
from repro.core.report import format_dict_rows
from repro.machine import nehalem_cluster
from repro.workloads.lbm import LBMBenchmark, LBMConfig

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
PHYSICS_STEPS = 50 if FAST else 400
SCALING_CFG = dict(ny=48, nx=48, steps=8) if FAST else dict(ny=192, nx=192, steps=40)
PROCESS_COUNTS = (1, 2, 4, 8) if FAST else (1, 2, 4, 8, 16, 32, 64)


def ascii_profile(prof, width=48):
    top = max(prof)
    lines = []
    for i, u in enumerate(prof):
        bar = "#" * max(1, round(width * u / top))
        lines.append(f"  y={i:2d} |{bar}")
    return "\n".join(lines)


if __name__ == "__main__":
    machine = nehalem_cluster(nodes=8)

    # 1. physics: develop the flow and show the parabolic profile
    bench = LBMBenchmark(LBMConfig(ny=16, nx=24, steps=PHYSICS_STEPS))
    _, summary = bench.run(4, machine=machine)
    print("developed channel-flow profile (mean u_x per row):")
    print(ascii_profile(summary["ux_profile"]))
    print(f"\nmass drift over {PHYSICS_STEPS} steps: "
          f"{summary['mass_drift']:.2e} (exact conservation)\n")

    # 2. scaling: the convolution study's analysis, unchanged
    cfg = LBMConfig(**SCALING_CFG)
    profile = ScalingProfile("p")
    for p in PROCESS_COUNTS:
        res, s = LBMBenchmark(cfg).run(
            p, machine=machine, compute_jitter=0.02, noise_floor=80e-6,
            seed=100 + p,
        )
        assert s["mass_drift"] < 1e-12
        profile.add(p, SectionProfile.from_run(res))
        print(f"p={p:3d}  walltime={res.walltime*1e3:9.3f} ms  "
              f"msgs={res.network['messages']}")

    analysis = ScalingAnalysis(profile)
    print()
    print(format_dict_rows(analysis.breakdown_rows(
        labels=["COLLIDE", "STREAM", "HALO", "MACRO"]),
        title="% of execution per section (the Figure 5(a) view, LBM)"))
    print()
    print(format_dict_rows(analysis.speedup_rows(bound_label="HALO"),
                           title="speedup + HALO partial bound (Eq. 6)"))
    print()
    binding = analysis.binding_sections()
    worst = binding[max(binding)]
    print(f"binding section at p={max(binding)}: {worst.label!r} "
          f"(bound {worst.bound:.1f}x) — same diagnosis workflow as the "
          "paper's convolution study, zero workload-specific tooling.")
