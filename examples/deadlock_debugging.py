#!/usr/bin/env python
"""Sections as debugging context (the paper's Section 5.3 scenario).

*"A debugger would tell you that the bug is in the 'communication'
section of 'load-balancing', for example."*  The simulated runtime makes
that concrete: when a run deadlocks, the engine's report names each
rank's blocked operation, and the section stacks recorded up to that
point tell you *which phase* of the program the hang lives in.

Run:  python examples/deadlock_debugging.py
(REPRO_EXAMPLE_FAST=1 shrinks the run to CI-smoke scale, seconds.)
"""

import os

from repro.errors import DeadlockError
from repro.machine import laptop
from repro.simmpi import Tool, run_mpi, section_enter, section_exit

FAST = os.environ.get("REPRO_EXAMPLE_FAST", "") not in ("", "0")
# Must stay above the eager threshold or the sends complete and the
# "bug" vanishes; 100 kB is still firmly rendezvous-sized.
PAYLOAD = 10**5 if FAST else 10**6


class OpenSectionTracker(Tool):
    """Remembers each rank's currently open section path."""

    def __init__(self):
        self.open_path = {}

    def section_enter_cb(self, comm_id, label, data, rank, t):
        self.open_path.setdefault(rank, []).append(label)

    def section_leave_cb(self, comm_id, label, data, rank, t):
        self.open_path[rank].pop()


def buggy_application(ctx):
    """A load-balancing phase whose communication has a send/recv cycle:
    every rank first receives from its right neighbour, then sends left —
    a classic deadlock once messages are rendezvous-sized."""
    comm = ctx.comm
    section_enter(ctx, "load-balancing")
    section_enter(ctx, "communication")
    big = bytes(PAYLOAD)  # rendezvous-sized: blocking send will wait
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    got = comm.recv(source=right)  # everyone receives first → cycle
    comm.send(big, dest=left)
    section_exit(ctx, "communication")
    section_exit(ctx, "load-balancing")
    return got


if __name__ == "__main__":
    tracker = OpenSectionTracker()
    try:
        run_mpi(4, buggy_application, machine=laptop(4), tools=[tracker])
    except DeadlockError as exc:
        print("the engine detected the hang and reported every rank's state:\n")
        print(exc)
        print("\n...and the section tool pinpoints the phase:")
        for rank, path in sorted(tracker.open_path.items()):
            print(f"  rank {rank} is stuck inside section "
                  f"{' > '.join(path[1:]) or '(top level)'}")
        print("\nFix: use sendrecv (or order by parity) in the "
              "'communication' section of 'load-balancing'.")
    else:
        raise SystemExit("expected a deadlock — the bug seems fixed?!")
