"""Shared session fixtures for the benchmark harness.

The expensive simulated sweeps run once per session and are shared by
every per-figure benchmark; each benchmark then (a) regenerates its
table/figure rows, (b) asserts the paper's shape checks, (c) writes the
rendered artifact to ``benchmarks/results/<exp>.txt``, and (d) times the
analysis step with pytest-benchmark.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness.runner import run_convolution_sweep, run_lulesh_grid
from repro.harness.sweeps import (
    default_convolution_sweep,
    paper_lulesh_sweep,
)
from repro.workloads.lulesh import PAPER_TOTAL_ELEMENTS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Figure 7 per-rank sides holding the paper's element count constant.
PAPER_SIDES = {1: 48, 8: 24, 27: 16, 64: 12}


def save_artifact(name: str, text: str) -> None:
    """Persist a rendered experiment table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def merge_json_artifact(name: str, update: dict) -> pathlib.Path:
    """Shallow-merge ``update`` into ``results/<name>.json``.

    Several benchmark files contribute sections to one machine-readable
    document (``BENCH_engine.json``), so each writer merges its own
    top-level keys instead of overwriting the file.  An unreadable or
    non-object existing payload is discarded.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    doc = {}
    if path.exists():
        try:
            prev = json.loads(path.read_text())
        except (OSError, ValueError):
            prev = None
        if isinstance(prev, dict):
            doc = prev
    doc.update(update)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"\n[saved to {path}]")
    return path


# The session sweeps honor the harness speed knobs: set REPRO_JOBS=N
# (0 = all cores) to fan sweep points out over worker processes, and
# REPRO_CACHE_DIR=DIR to replay previously simulated points from the
# persistent run cache.  Both keep results bit-identical to a serial,
# uncached run, so benchmark numbers stay comparable.


@pytest.fixture(scope="session")
def conv_profile():
    """The Figure 5/6 convolution sweep (scaled-down paper sweep)."""
    sweep = default_convolution_sweep()
    # Benchmark-grade: fewer repetitions than the paper's 20, enough to
    # average per point while finishing in a couple of minutes.
    object.__setattr__(sweep, "reps", 2)
    return run_convolution_sweep(sweep, jobs=None, cache=None)


@pytest.fixture(scope="session")
def knl_grid():
    """The Figures 9/10 Lulesh grid on the KNL model at paper size."""
    sweep = paper_lulesh_sweep("knl", steps=10)
    object.__setattr__(sweep, "reps", 1)
    analysis, drifts = run_lulesh_grid(sweep, sides=PAPER_SIDES,
                                       jobs=None, cache=None)
    assert max(drifts.values()) < 1e-10, "energy conservation violated"
    return analysis


@pytest.fixture(scope="session")
def bdw_grid():
    """The Figure 8 Lulesh grid on the dual-Broadwell model."""
    sweep = paper_lulesh_sweep("broadwell", steps=10)
    object.__setattr__(sweep, "reps", 1)
    analysis, drifts = run_lulesh_grid(sweep, sides=PAPER_SIDES,
                                       jobs=None, cache=None)
    assert max(drifts.values()) < 1e-10, "energy conservation violated"
    return analysis
