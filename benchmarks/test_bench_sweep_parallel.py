"""Harness-speed benchmarks: parallel sweeps, cache replay, scheduler.

Not a paper artifact — these guard the performance subsystem itself:

* serial vs multi-process wall-clock of a convolution sweep (the
  ``--jobs`` fan-out; the speedup assertion only arms on hosts with
  enough cores to express it);
* cold vs warm run-cache wall-clock (a warm replay skips every
  simulation);
* engine scheduler step throughput at high rank counts (the ready-heap
  fast path; each scheduling step should stay O(log ranks)).
"""

import os
import time

import pytest

from repro.core.export import scaling_to_json
from repro.harness.cache import RunCache
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine.catalog import nehalem_cluster
from repro.simmpi.engine import run_mpi
from repro.workloads.convolution import ConvolutionConfig

from benchmarks.conftest import save_artifact


def _bench_sweep(reps: int = 2) -> ConvolutionSweep:
    """A mid-size sweep: big enough that fan-out/caching dominates the
    pool/pickling overhead, small enough for CI."""
    sweep = ConvolutionSweep(
        config=ConvolutionConfig(height=192, width=288, steps=30),
        machine=nehalem_cluster(nodes=8),
        process_counts=(1, 2, 4, 8, 16, 32, 64),
        reps=reps,
    )
    return sweep


def test_sweep_parallel_vs_serial_wallclock():
    """Honest fan-out measurement: the pool never oversubscribes.

    The job count is ``min(4, cores)`` — an earlier version hardcoded
    ``jobs=4`` and dutifully recorded a 0.57× "speedup" on a 1-core
    host, which measured only context-switch overhead.  On hosts that
    cannot express parallelism (< 2 cores) the artifact says so instead
    of publishing a misleading ratio.
    """
    sweep = _bench_sweep()
    cores = os.cpu_count() or 1
    jobs = min(4, cores)
    t0 = time.perf_counter()
    serial = run_convolution_sweep(sweep, jobs=1)
    t_serial = time.perf_counter() - t0
    lines = [
        "parallel sweep wall-clock (convolution, 7 scales x 2 reps)",
        f"  host cores:      {cores}",
        f"  serial (jobs=1): {t_serial:8.2f} s",
    ]
    if jobs > 1:
        t0 = time.perf_counter()
        parallel = run_convolution_sweep(sweep, jobs=jobs)
        t_parallel = time.perf_counter() - t0
        assert scaling_to_json(parallel) == scaling_to_json(serial)
        lines += [
            f"  jobs={jobs}:          {t_parallel:8.2f} s",
            f"  speedup:         {t_serial / t_parallel:8.2f} x",
        ]
    else:
        lines += [
            "  parallel run:    skipped — a 1-core host cannot express a",
            "  sweep speedup; an oversubscribed pool would only measure",
            "  context-switch overhead (see resolve_jobs).",
        ]
    save_artifact("sweep_parallel", "\n".join(lines))
    if cores >= 4:
        # The acceptance bar: >= 2x on a 4-core host.  Below 4 cores the
        # pool cannot express the speedup, so only record the numbers.
        assert t_parallel < t_serial / 2


def test_sweep_cache_warm_vs_cold_wallclock(tmp_path):
    sweep = _bench_sweep(reps=1)
    cache = RunCache(root=tmp_path)
    t0 = time.perf_counter()
    cold = run_convolution_sweep(sweep, cache=cache)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_convolution_sweep(sweep, cache=cache)
    t_warm = time.perf_counter() - t0

    assert scaling_to_json(warm) == scaling_to_json(cold)
    assert cache.hits == len(sweep.process_counts)
    lines = [
        "run-cache replay wall-clock (convolution, 7 scales x 1 rep)",
        f"  cold (simulate + store): {t_cold:8.2f} s",
        f"  warm (replay from disk): {t_warm:8.2f} s",
        f"  warm / cold:             {100 * t_warm / t_cold:8.1f} %",
    ]
    save_artifact("sweep_cache", "\n".join(lines))
    # The acceptance bar: a warm, identical repeat in < 10 % of cold.
    assert t_warm < 0.10 * t_cold


def test_engine_scheduler_step_throughput(benchmark):
    """Scheduling-step rate at p=128: 20 barrier rounds drive thousands
    of park/wake/schedule cycles through the ready heap."""

    def main(ctx):
        for _ in range(20):
            ctx.comm.barrier()

    benchmark(lambda: run_mpi(128, main, machine=nehalem_cluster(nodes=16)))


def test_engine_scheduler_compute_heavy_throughput(benchmark):
    """Step throughput when ranks mostly compute (heap entries go stale
    rarely): 64 ranks x 100 compute/sendrecv rounds."""

    def main(ctx):
        peer = ctx.rank ^ 1
        for i in range(100):
            ctx.compute(seconds=1e-6 * (1 + ctx.rank % 3))
            if ctx.rank < peer:
                ctx.comm.send(i, dest=peer)
                ctx.comm.recv(source=peer)
            else:
                ctx.comm.recv(source=peer)
                ctx.comm.send(i, dest=peer)

    benchmark(lambda: run_mpi(64, main, machine=nehalem_cluster(nodes=8)))
