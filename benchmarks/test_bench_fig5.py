"""Figure 5 — convolution benchmark scaling views.

(a) percentage of execution per section, (b) total time per section,
(c) average per-process time per section, (d) measured speedup with the
HALO partial bounds.  Shape criteria are asserted; rows are persisted.
"""

import pytest

from repro.harness import experiments as E

from benchmarks.conftest import save_artifact


@pytest.mark.parametrize("exp_id", ["fig5a", "fig5b", "fig5c", "fig5d"])
def test_fig5(benchmark, conv_profile, exp_id):
    fn = E.ALL_EXPERIMENTS[exp_id]
    result = benchmark(fn, conv_profile)
    save_artifact(exp_id, result.render())
    assert result.passed, f"{exp_id} shape checks failed: {result.checks}"


def test_fig5d_speedup_saturates_like_paper(benchmark, conv_profile):
    """The paper's speedup is 'rapidly bounded in the 64 processes
    range'; the scaled-down run must saturate similarly: efficiency at
    the largest scale far below 50 %."""
    xs, sp = benchmark(conv_profile.speedup_series)
    pmax = max(xs)
    assert sp[xs.index(pmax)] / pmax < 0.30
    # and the knee sits around the node-count scale, not at p=2
    assert sp[xs.index(8)] / 8 > 0.55
