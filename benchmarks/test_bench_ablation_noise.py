"""Ablation — noise sources behind the Figure 5(b) communication growth.

The paper attributes the growing, noisy HALO totals to "the decreasing
computation time which does not recover communication jitter, leading to
an accumulation of this variability".  This ablation switches the two
modeled noise sources off independently — the additive OS-noise floor on
compute, and the heavy-tail network spikes — and measures each one's
contribution to the HALO section at scale.
"""

from repro.core.profile import SectionProfile
from repro.core.report import format_dict_rows
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import ConvolutionBenchmark, ConvolutionConfig

from benchmarks.conftest import save_artifact

P = 64
CFG = ConvolutionConfig(height=288, width=432, steps=60)


def _halo_total(noise_floor: float, spikes: bool, seed: int = 0) -> float:
    jitter = 0.08 if spikes else 0.0
    mach = nehalem_cluster(nodes=8, jitter=jitter)
    if not spikes:
        # Rebuild the tiers without heavy tails.
        from dataclasses import replace

        mach = replace(
            mach,
            intra_node=replace(mach.intra_node, spike_prob=0.0),
            inter_node=replace(mach.inter_node, spike_prob=0.0),
        )
    bench = ConvolutionBenchmark(CFG)
    res = bench.run(P, machine=mach, seed=seed, compute_jitter=0.02,
                    noise_floor=noise_floor)
    return SectionProfile.from_run(res).total("HALO")


def test_ablation_noise_sources(benchmark):
    rows = []
    for label, nf, spikes in (
        ("quiet network, no OS noise", 0.0, False),
        ("OS-noise floor only", 120e-6, False),
        ("network spikes only", 0.0, True),
        ("both (the Figure 5 model)", 120e-6, True),
    ):
        total = _halo_total(nf, spikes)
        rows.append({"configuration": label, "halo_total_s": total})
    save_artifact(
        "ablation_noise",
        format_dict_rows(rows, title=f"[ablation] HALO total at p={P} by noise source"),
    )
    quiet = rows[0]["halo_total_s"]
    full = rows[3]["halo_total_s"]
    # Noise, not wire time, dominates communication at scale (paper §5.1).
    assert full > 3 * quiet
    # Each source alone already inflates the quiet baseline.
    assert rows[1]["halo_total_s"] > 1.5 * quiet

    benchmark(lambda: _halo_total(0.0, False))
