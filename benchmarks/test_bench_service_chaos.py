"""Chaos soak: a 50-job campaign under seeded worker kills + a restart.

The ISSUE acceptance campaign, full size: 50 unique sweep jobs pushed
through the supervised process pool while worker processes are
SIGKILLed at >= 5 seeded points and the server performs one full
restart (workers killed, queue abandoned, journal replayed).  Asserted
invariants:

* zero lost jobs — every accepted job ends ``done`` in the registry;
* zero duplicate simulations — each job completes exactly once across
  both server generations, and a full resubmit sweep afterwards is
  answered entirely from the registry;
* byte-identical artifacts — every chaotic payload equals the one an
  undisturbed (thread-mode, separate cache) server computes.

Results land in ``results/service_chaos.txt`` and the
``BENCH_service.json`` machine-readable document.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time

from repro.service.api import ServiceApp

from benchmarks.conftest import merge_json_artifact, save_artifact

N_JOBS = 50
MIN_KILLS = 5
SEED = 20260807

# heavy enough that the campaign is still in flight at every kill point
SPEC_TEMPLATE = {
    "kind": "convolution",
    "workload": {"height": 96, "width": 128, "steps": 30},
    "machine": {"name": "nehalem", "nodes": 4},
    "process_counts": [1, 2, 4],
    "reps": 1,
}


def _specs():
    return [dict(SPEC_TEMPLATE, base_seed=1000 + i,
                 client=f"chaos-{i % 5}")
            for i in range(N_JOBS)]


def _submit(app, spec):
    status, _, body = app.handle("POST", "/api/v1/jobs", {},
                                 json.dumps(spec).encode())
    assert status in (200, 202), body
    return json.loads(body)


def _done_count(app, keys):
    return sum(
        1 for key in keys
        if (app.registry.get(key) or {}).get("status") == "done"
    )


def test_chaos_soak_50_jobs_with_kills_and_restart(tmp_path):
    rng = random.Random(SEED)
    cache_dir = tmp_path / "cache"
    t_start = time.perf_counter()

    # -- generation 1: half the campaign under seeded kills ------------------
    app1 = ServiceApp(cache_dir=cache_dir, workers=2, worker_mode="process",
                      retry_budget=4, retry_backoff=0.05, chaos_seed=1,
                      queue_limit=2 * N_JOBS, per_client=N_JOBS)
    app1.start()
    keys = [_submit(app1, spec)["job_id"] for spec in _specs()]
    assert len(set(keys)) == N_JOBS

    kills = 0
    deadline = time.time() + 300
    while _done_count(app1, keys) < N_JOBS // 2:
        assert time.time() < deadline, "generation 1 stalled"
        time.sleep(rng.uniform(0.3, 0.9))
        pids = app1.scheduler.worker_pids()
        if pids and kills < MIN_KILLS:
            os.kill(rng.choice(pids), signal.SIGKILL)
            kills += 1
    # top up to the required kill count before pulling the plug
    while kills < MIN_KILLS:
        pids = app1.scheduler.worker_pids()
        if pids:
            os.kill(rng.choice(pids), signal.SIGKILL)
            kills += 1
        time.sleep(0.2)

    # one full server restart: workers die, the queue is abandoned,
    # only journal + registry survive
    app1.close(drain=False, preserve_queued=True)
    completed_gen1 = app1.metrics.counter("jobs_completed")
    restarts_gen1 = app1.metrics.counter("worker_restarts")
    requeued_gen1 = app1.metrics.counter("jobs_requeued")

    # -- generation 2: replay and finish -------------------------------------
    app2 = ServiceApp(cache_dir=cache_dir, workers=2, worker_mode="process",
                      retry_budget=4, retry_backoff=0.05, chaos_seed=2,
                      queue_limit=2 * N_JOBS, per_client=N_JOBS)
    app2.start()
    try:
        deadline = time.time() + 600
        while _done_count(app2, keys) < N_JOBS:
            assert time.time() < deadline, (
                f"lost jobs: {_done_count(app2, keys)}/{N_JOBS} done")
            time.sleep(0.1)
        completed_gen2 = app2.metrics.counter("jobs_completed")

        # zero lost, zero duplicated
        assert _done_count(app2, keys) == N_JOBS
        assert completed_gen1 + completed_gen2 == N_JOBS

        # a full resubmit sweep is served from the registry, zero work
        for spec in _specs():
            assert _submit(app2, spec)["cached"] is True
        assert app2.metrics.counter("jobs_submitted") == 0
        assert app2.metrics.counter("registry_hits") == N_JOBS

        chaotic = {
            key: json.dumps(app2.registry.get(key)["result"], sort_keys=True)
            for key in keys
        }
        replay_stats = dict(app2.replay_stats)
    finally:
        app2.close()
    chaos_elapsed = time.perf_counter() - t_start

    # -- control: the same campaign, undisturbed -----------------------------
    control = ServiceApp(cache_dir=tmp_path / "control-cache", workers=2,
                         worker_mode="thread",
                         queue_limit=2 * N_JOBS, per_client=N_JOBS)
    control.start()
    try:
        for spec in _specs():
            _submit(control, spec)
        deadline = time.time() + 600
        while _done_count(control, keys) < N_JOBS:
            assert time.time() < deadline, "control campaign stalled"
            time.sleep(0.1)
        drift = [
            key for key in keys
            if json.dumps(control.registry.get(key)["result"],
                          sort_keys=True) != chaotic[key]
        ]
    finally:
        control.close()
    assert not drift, f"artifact drift on {len(drift)} jobs: {drift[:3]}"

    lines = [
        f"service chaos soak ({N_JOBS} jobs, 2 workers, seed {SEED})",
        f"  worker SIGKILLs:    {kills} (+1 full server restart)",
        f"  gen-1 completed:    {completed_gen1} "
        f"(restarts {restarts_gen1}, requeues {requeued_gen1})",
        f"  gen-2 completed:    {completed_gen2} "
        f"(journal replayed {replay_stats['replayed']}, "
        f"replay {replay_stats['seconds'] * 1e3:.1f} ms)",
        f"  lost jobs:          0 / {N_JOBS}",
        f"  duplicate sims:     0 (completions sum to {N_JOBS})",
        f"  artifact drift:     0 / {N_JOBS} (byte-identical to control)",
        f"  wall-clock:         {chaos_elapsed:8.1f} s",
    ]
    save_artifact("service_chaos", "\n".join(lines))
    merge_json_artifact("BENCH_service", {
        "chaos_soak": {
            "jobs": N_JOBS,
            "kills": kills,
            "restarts": 1,
            "seed": SEED,
            "gen1_completed": completed_gen1,
            "gen2_completed": completed_gen2,
            "worker_restarts_gen1": restarts_gen1,
            "jobs_requeued_gen1": requeued_gen1,
            "journal_replayed": replay_stats["replayed"],
            "journal_replay_seconds": replay_stats["seconds"],
            "lost": 0,
            "duplicates": 0,
            "artifact_drift": 0,
            "elapsed_seconds": round(chaos_elapsed, 3),
        },
    })
