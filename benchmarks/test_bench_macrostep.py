"""Macro-step capture & replay benchmarks (the steady-state JIT).

Not a paper artifact — these track the perf trajectory of the
thread-free engine's macro-step layer (``repro.simmpi.macrostep``)
across PRs, merged under the ``"macrostep"`` key of the shared
``benchmarks/results/BENCH_engine.json`` (schema 3).

Metrics
-------
Replay drains whole steady-state rounds without per-rank ready-heap
pops where the collective emulator engages, so the raw ``sched_steps``
counter *shrinks* under macro-step.  Throughput is therefore reported
as **equivalent scheduling steps per second**: the interpreted path's
step count divided by each mode's wall-clock — i.e. how fast each mode
retires the *same* simulated work.  The equivalent-steps ratio equals
the wall-clock ratio by construction and is the acceptance number.

Bars
----
* allreduce-heavy p=1024: >= 3x equivalent sched-steps/s (full mode).
* halo2d p=256 steady state: slope of wall-clock vs step count —
  measured between 24 and 96 Jacobi sweeps, which cancels startup,
  capture rounds and the REDUCE tail.  The honest measured ratio is
  ~1.6x (the workload's own numpy, the section runtime and generator
  resumption bound it; see docs/tuning.md), recorded as such with a
  1.25x floor asserted.
* p=4096 smoke: capture & replay complete at the largest scale and the
  artifact records the counters (``macrostep_p4096.txt``).

``REPRO_BENCH_FAST=1`` shrinks shapes and relaxes bars;
``REPRO_PERF_SMOKE=1`` enables the CI regression gate, which fails on
a >30% drop of the replay speedup against the committed baseline.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.machine.catalog import nehalem_cluster
from repro.simmpi import SUM
from repro.simmpi.engine import run_mpi
from repro.workloads import registry

from benchmarks.conftest import merge_json_artifact, save_artifact

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")
PERF_SMOKE = os.environ.get("REPRO_PERF_SMOKE", "").strip() not in ("", "0")


def _machine(p):
    return nehalem_cluster(nodes=-(-p // 8), jitter=0.1)


def _allreduce_heavy(rounds):
    """Latency-bound 16-double Allreduce churn (the canonical shape)."""

    def gmain(ctx):
        acc = np.zeros(16)
        for _ in range(rounds):
            ctx.compute(1e-6)
            out = np.empty_like(acc)
            yield from ctx.comm.g_Allreduce(acc + ctx.rank, out, SUM)
            acc = out
        return float(acc[0])

    return gmain


def _best_of(reps, p, gmain, macrostep):
    """Best-of-N wall-clock (min rides out shared-host noise) + result."""
    t_best, r_best = None, None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run_mpi(p, gmain, machine=_machine(p), seed=3,
                      coll_analytic=False, engine="threadfree",
                      macrostep=macrostep)
        dt = time.perf_counter() - t0
        if t_best is None or dt < t_best:
            t_best, r_best = dt, res
    return t_best, r_best


def _eq(a, b):
    """Recursive exact equality that tolerates numpy payloads."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            and a.dtype == b.dtype and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_eq(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_eq(a[k], b[k]) for k in a))
    return a == b


def _assert_identical(on, off):
    """The bit-identity contract (sched_steps deliberately excluded)."""
    assert on.clocks == off.clocks
    assert _eq(on.results, off.results)
    assert on.walltime == off.walltime
    assert on.network == off.network
    assert on.section_events == off.section_events


def test_macrostep_allreduce_heavy_p1024():
    """Acceptance: >= 3x equivalent sched-steps/s at p=1024 (full mode)."""
    p = 128 if FAST_MODE else 1024
    rounds = 24 if FAST_MODE else 48
    reps = 2 if FAST_MODE else 3
    gmain = _allreduce_heavy(rounds)

    t_on, r_on = _best_of(reps, p, gmain, macrostep=True)
    t_off, r_off = _best_of(reps, p, gmain, macrostep=False)
    _assert_identical(r_on, r_off)
    assert r_on.rounds_captured > 0
    assert r_on.rounds_replayed > 0
    # The emulator drains whole rounds: fewer raw heap pops than the
    # interpreter for the same simulated work.
    assert r_on.sched_steps < r_off.sched_steps

    ratio = t_off / t_on                      # == equivalent-steps ratio
    merge_json_artifact("BENCH_engine", {"schema": 3, "macrostep": {
        "mode": "fast" if FAST_MODE else "full",
        "allreduce_heavy": {
            "ranks": p,
            "rounds": rounds,
            "wallclock_interpreted_s": t_off,
            "wallclock_macrostep_s": t_on,
            "equiv_sched_steps_per_sec_interpreted": r_off.sched_steps / t_off,
            "equiv_sched_steps_per_sec_macrostep": r_off.sched_steps / t_on,
            "speedup": ratio,
            "sched_steps_interpreted": r_off.sched_steps,
            "sched_steps_macrostep": r_on.sched_steps,
            "rounds_captured": r_on.rounds_captured,
            "rounds_replayed": r_on.rounds_replayed,
            "deopts": r_on.deopts,
        },
    }})
    if FAST_MODE:
        assert ratio > 1.5
    else:
        # The PR acceptance criterion: >= 3x at p=1024.
        assert ratio >= 3.0


def _halo_slope(p, steps_lo, steps_hi, reps, macrostep):
    """Per-step steady-state cost: (T(hi) - T(lo)) / (hi - lo).

    The difference quotient cancels everything that happens once per
    run — engine setup, the capture rounds, the REDUCE tail — leaving
    the marginal cost of one steady-state Jacobi sweep.
    """

    def once(steps):
        plugin = registry.get("halo2d")({"steps": steps})
        t_best = None
        for _ in range(reps):
            t0 = time.perf_counter()
            plugin.run(p, machine=_machine(p), seed=3,
                       engine="threadfree", macrostep=macrostep)
            dt = time.perf_counter() - t0
            t_best = dt if t_best is None else min(t_best, dt)
        return t_best

    return (once(steps_hi) - once(steps_lo)) / (steps_hi - steps_lo)


def test_macrostep_halo2d_p256_steady_state():
    """halo2d p=256: steady-state per-sweep cost, replay vs interpreter.

    The honest number: replay wins ~1.6x on the marginal sweep.  The
    remaining time is shared floor — the workload's own numpy halo
    assembly, section events and generator resumption — which replay
    cannot remove (docs/tuning.md quantifies the split).  The asserted
    floor is deliberately below the measured ratio so host noise does
    not flake the suite; the recorded artifact carries the real value.
    """
    p = 64 if FAST_MODE else 256
    lo, hi = (12, 36) if FAST_MODE else (24, 96)
    reps = 2 if FAST_MODE else 3

    slope_on = _halo_slope(p, lo, hi, reps, macrostep=True)
    slope_off = _halo_slope(p, lo, hi, reps, macrostep=False)
    ratio = slope_off / slope_on

    # Replay must stay bit-identical on the exact benchmark shape.
    plugin = registry.get("halo2d")({"steps": lo})
    on = plugin.run(p, machine=_machine(p), seed=3,
                    engine="threadfree", macrostep=True)
    off = plugin.run(p, machine=_machine(p), seed=3,
                     engine="threadfree", macrostep=False)
    _assert_identical(on, off)
    assert on.rounds_replayed > 0

    merge_json_artifact("BENCH_engine", {"schema": 3, "macrostep_halo2d": {
        "mode": "fast" if FAST_MODE else "full",
        "ranks": p,
        "steps_lo": lo,
        "steps_hi": hi,
        "steady_state_s_per_step_interpreted": slope_off,
        "steady_state_s_per_step_macrostep": slope_on,
        "steady_state_speedup": ratio,
        "target_speedup": 2.0,
        "note": "shared floor (workload numpy, sections, generator "
                "resumption) bounds the measured ratio near 1.6x; "
                "see docs/tuning.md",
    }})
    if not FAST_MODE:
        assert ratio >= 1.25


def test_macrostep_p4096_smoke():
    """p=4096 capture & replay smoke: the largest-scale claim.

    Always runs at p=4096 — a smaller fast-mode p would smoke a
    different claim.  Asserts completion, engagement and bit-exact
    global reduction; wall-clock is recorded, not asserted.
    """
    p = 4096
    rounds = 5
    gmain = _allreduce_heavy(rounds)
    t0 = time.perf_counter()
    res = run_mpi(p, gmain, machine=_machine(p), seed=3,
                  coll_analytic=False, engine="threadfree", macrostep=True)
    elapsed = time.perf_counter() - t0
    assert res.engine == "threadfree"
    assert len(res.results) == p
    assert res.rounds_captured == p
    assert res.rounds_replayed > 0
    # The allreduce chain must leave every rank with the same bitwise
    # value (exact equality across modes is the differential suite's
    # job at smaller p; the smoke proves scale).
    assert all(r == res.results[0] for r in res.results)
    assert res.results[0] > 0.0
    lines = [
        f"macro-step capture & replay: p={p} allreduce-heavy smoke",
        f"  rounds:            {rounds} Allreduce(16 doubles) + compute",
        f"  wall-clock:        {elapsed:8.3f} s",
        f"  scheduling steps:  {res.sched_steps}",
        f"  rounds captured:   {res.rounds_captured}",
        f"  rounds replayed:   {res.rounds_replayed}",
        f"  deopts:            {res.deopts}",
        f"  virtual walltime:  {res.walltime:8.6f} s",
    ]
    save_artifact("macrostep_p4096", "\n".join(lines))


#: Committed replay speedup of the perf-smoke shape (p=256, 24 rounds,
#: best-of-3) on the reference host.  The CI gate fails when the
#: measured speedup drops more than 30% below it — a relative bar, so
#: absolute host speed cancels out of the comparison.
PERF_SMOKE_BASELINE_SPEEDUP = 2.6


def test_perf_smoke_macrostep_regression():
    """CI regression gate: replay speedup within 30% of the baseline."""
    if not PERF_SMOKE:
        import pytest

        pytest.skip("set REPRO_PERF_SMOKE=1 to run the regression gate")
    p, rounds = 256, 24
    gmain = _allreduce_heavy(rounds)
    t_on, r_on = _best_of(3, p, gmain, macrostep=True)
    t_off, r_off = _best_of(3, p, gmain, macrostep=False)
    _assert_identical(r_on, r_off)
    speedup = t_off / t_on
    floor = PERF_SMOKE_BASELINE_SPEEDUP * 0.7
    assert speedup >= floor, (
        f"macro-step replay speedup regressed: {speedup:.2f}x measured, "
        f"floor {floor:.2f}x (baseline {PERF_SMOKE_BASELINE_SPEEDUP}x - 30%)"
    )
