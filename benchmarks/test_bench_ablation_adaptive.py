"""Ablation — the Section 8 adaptive parallelism restriction.

Using the measured KNL thread-scaling curves, quantify the walltime a
runtime would recover by restraining each section to its pre-inflexion
team size instead of running a uniform oversized team — the paper's
"dynamically restraining parallelism for non-scalable sections".
"""

from repro.core.report import format_dict_rows
from repro.tools import AdaptiveAdvisor

from benchmarks.conftest import save_artifact

SECTIONS = ("LagrangeNodal", "LagrangeElements")


def test_ablation_adaptive_restriction(benchmark, knl_grid):
    curves = {lab: knl_grid.section_series(lab, 1) for lab in SECTIONS}
    adv = AdaptiveAdvisor(curves)

    uniform = max(knl_grid.thread_counts(1))  # a naive "use everything" team
    plans = benchmark(adv.plan, uniform)

    rows = [
        {
            "section": p.label,
            "uniform_threads": uniform,
            "best_threads": p.best_threads,
            "uniform_time": p.uniform_time,
            "best_time": p.best_time,
            "gain_s": p.gain,
            "over_parallelised": p.over_parallelised,
        }
        for p in plans
    ]
    gain = adv.predicted_gain(uniform)
    rows.append({"section": "TOTAL", "uniform_threads": uniform,
                 "best_threads": "-", "uniform_time": adv.uniform_walltime(plans),
                 "best_time": adv.predicted_walltime(plans),
                 "gain_s": adv.uniform_walltime(plans) - adv.predicted_walltime(plans),
                 "over_parallelised": ""})
    save_artifact(
        "ablation_adaptive",
        format_dict_rows(rows, title="[ablation] adaptive per-section thread caps (KNL, p=1)"),
    )
    # Past the inflexion the restriction recovers a large fraction.
    assert gain > 0.5
    assert all(p.best_threads < uniform for p in plans)
