"""Extension — the weak-scaling (Gustafson) side of Section 2.

The paper's Section 2 situates applications "between these two
configurations" (Amdahl's strong scaling and Gustafson–Barsis weak
scaling).  The evaluation only runs strong scaling; this extension
benchmark runs the same convolution workload in the weak configuration
and contrasts the two regimes the theory predicts:

* strong scaling: efficiency decays toward the partial bounds;
* weak scaling: near-constant walltime / near-linear scaled speedup,
  eroded only by the (growing) communication and the serial LOAD/STORE.
"""

from repro.core.report import format_dict_rows
from repro.core.speedup import gustafson_speedup
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig

from benchmarks.conftest import save_artifact

PROCESS_COUNTS = (1, 2, 4, 8, 16, 32)


def _sweep(weak: bool) -> ConvolutionSweep:
    return ConvolutionSweep(
        config=ConvolutionConfig(height=96, width=432, steps=40),
        machine=nehalem_cluster(nodes=4),
        process_counts=PROCESS_COUNTS,
        reps=2,
        weak=weak,
        noise_floor=60e-6,
    )


def test_weak_vs_strong_scaling(benchmark):
    strong = run_convolution_sweep(_sweep(weak=False))
    weak = run_convolution_sweep(_sweep(weak=True))

    rows = []
    for p in PROCESS_COUNTS:
        t1 = weak.mean_walltime(1)
        loop = weak.mean_avg_per_process(
            "CONVOLVE", p
        ) + weak.mean_avg_per_process("HALO", p)
        io = sum(
            weak.mean_avg_per_process(lab, p)
            for lab in ("LOAD", "STORE", "SCATTER", "GATHER")
        )
        rows.append(
            {
                "p": p,
                "strong_speedup": strong.speedup(p),
                "strong_efficiency": strong.speedup(p) / p,
                "weak_walltime": weak.mean_walltime(p),
                "weak_scaled_speedup": p * t1 / weak.mean_walltime(p),
                "weak_timeloop_per_proc": loop,
                "weak_io_per_proc": io,
                "gustafson_ideal": gustafson_speedup(p, 0.0),
            }
        )
    save_artifact(
        "weak_scaling",
        format_dict_rows(rows, title="[extension] strong vs weak scaling (convolution)"),
    )

    first, last = rows[0], rows[-1]
    # Strong scaling decays toward its bounds.
    assert last["strong_efficiency"] < 0.7
    # Gustafson holds where it is supposed to: the per-process time-loop
    # cost grows far slower than the 32x problem.  The residual growth
    # (~60 %) is not compute — it is accumulated halo-wait jitter, the
    # exact effect the paper blames for its Figure 5(b) noise (the
    # per-process CONVOLVE time alone stays flat; see next assert).
    assert last["weak_timeloop_per_proc"] < 2.0 * first["weak_timeloop_per_proc"]
    conv1 = weak.mean_avg_per_process("CONVOLVE", 1)
    conv32 = weak.mean_avg_per_process("CONVOLVE", PROCESS_COUNTS[-1])
    assert conv32 < 1.2 * conv1
    # ... and what erodes the *overall* weak scaling is the serial
    # rank-0 I/O pipeline, whose cost grows with the global problem —
    # the sections name the culprit immediately.
    assert last["weak_io_per_proc"] > 4 * first["weak_io_per_proc"]
    assert last["weak_scaled_speedup"] > 2 * last["strong_speedup"]

    benchmark(lambda: run_convolution_sweep(_sweep(weak=False)))
