"""Figure 3 — the section metric definitions, as a live artifact.

Figure 3 is an illustration, not a measurement; its reproduction is the
metric implementation itself.  This benchmark (a) regenerates the
figure's derived quantities from a staggered section instance and saves
them, and (b) measures the tool-side cost of computing Figure 3 metrics
over a large instance population (the overhead a profiler would pay).
"""

import numpy as np

from repro.core.metrics import SectionInstanceTiming
from repro.core.report import format_dict_rows
from repro.tools import analyze_load_balance

from benchmarks.conftest import save_artifact


def _staggered_instance(n_ranks=8, seed=3):
    rng = np.random.default_rng(seed)
    inst = SectionInstanceTiming("region-of-interest", ("w",), 0)
    for r in range(n_ranks):
        t_in = 10.0 + float(rng.uniform(0, 0.5))
        inst.t_in[r] = t_in
        inst.t_out[r] = t_in + 2.0 + float(rng.uniform(0, 0.3))
    return inst


def test_fig3_derived_metrics(benchmark):
    inst = _staggered_instance()

    rows = benchmark(
        lambda: [
            {
                "rank": r,
                "Tin": inst.t_in[r],
                "Tout": inst.t_out[r],
                "Tsection(=Tout-Tmin)": inst.tsection(r),
                "imb_in(=Tin-Tmin)": inst.entry_imbalance(r),
            }
            for r in inst.ranks
        ]
    )
    summary = inst.as_dict()
    text = format_dict_rows(rows, title="[fig3] per-rank section metrics")
    text += "\n" + format_dict_rows([summary], title="[fig3] instance summary")
    save_artifact("fig3_metrics", text)
    assert summary["imbalance"] >= 0
    assert summary["tmin"] == min(inst.t_in.values())


def test_fig3_metric_throughput_at_scale(benchmark):
    """Cost of the Figure 3 load-balance analysis over 2 000 instances of
    a 64-rank section — the pane a tool would refresh interactively."""
    rng = np.random.default_rng(0)
    instances = []
    for occ in range(2000):
        inst = SectionInstanceTiming("hot", ("w",), occ)
        base = occ * 1.0
        ins = base + rng.random(64) * 0.01
        outs = ins + 0.5 + rng.random(64) * 0.05
        inst.t_in = dict(enumerate(ins))
        inst.t_out = dict(enumerate(outs))
        instances.append(inst)

    reports = benchmark(analyze_load_balance, instances)
    assert reports[0].instances == 2000
