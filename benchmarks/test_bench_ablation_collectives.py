"""Ablation — algorithmic collectives vs naive linear baselines.

DESIGN.md calls out the collective algorithms (binomial trees, rings) as
a design choice of the substrate; this ablation quantifies, on the
modeled Nehalem cluster, what they buy over linear fan-out/fan-in — and
therefore how much of the SCATTER/GATHER behaviour in Figure 5 is
algorithmic rather than physical.
"""

import numpy as np

from repro.core.report import format_dict_rows
from repro.machine.catalog import nehalem_cluster
from repro.simmpi import collectives as coll
from repro.simmpi.engine import run_mpi
from repro.simmpi.reduce_ops import SUM

from benchmarks.conftest import save_artifact

P = 64
PAYLOAD = 50_000  # doubles → 400 kB, rendezvous-sized


def _walltime(main):
    mach = nehalem_cluster(nodes=8, jitter=0.0)
    return run_mpi(P, main, machine=mach, seed=0).walltime


def _tree_bcast(ctx):
    data = np.zeros(PAYLOAD) if ctx.comm.rank == 0 else None
    ctx.comm.bcast(data, root=0)


def _linear_bcast(ctx):
    data = np.zeros(PAYLOAD) if ctx.comm.rank == 0 else None
    coll.bcast_linear(ctx.comm, data, root=0)


def _tree_reduce(ctx):
    ctx.comm.reduce(np.ones(PAYLOAD), root=0)


def _linear_reduce(ctx):
    coll.reduce_linear(ctx.comm, np.ones(PAYLOAD), SUM, root=0)


def _dissemination_barrier(ctx):
    for _ in range(20):
        ctx.comm.barrier()


def _central_barrier(ctx):
    for _ in range(20):
        coll.barrier_central(ctx.comm)


def test_ablation_collective_algorithms(benchmark):
    rows = []
    pairs = [
        ("bcast", _tree_bcast, _linear_bcast),
        ("reduce", _tree_reduce, _linear_reduce),
        ("barrier x20", _dissemination_barrier, _central_barrier),
    ]
    for name, tree_fn, linear_fn in pairs:
        t_tree = _walltime(tree_fn)
        t_linear = _walltime(linear_fn)
        rows.append(
            {
                "collective": name,
                "tree_time": t_tree,
                "linear_time": t_linear,
                "speedup": t_linear / t_tree,
            }
        )
    save_artifact(
        "ablation_collectives",
        format_dict_rows(rows, title=f"[ablation] tree vs linear collectives, p={P}"),
    )
    # Data-carrying collectives must clearly win with tree algorithms
    # (the root's ports serialise a linear fan-out/fan-in).  Zero-byte
    # barriers are latency-only, where both variants are microseconds
    # apart — reported but not asserted.
    for row in rows:
        if row["collective"] in ("bcast", "reduce"):
            assert row["speedup"] > 2.0, row

    # pytest-benchmark target: the cheapest repeated collective.
    benchmark(lambda: _walltime(_dissemination_barrier))
