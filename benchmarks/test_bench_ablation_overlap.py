"""Ablation — acting on the section diagnosis: halo overlap.

The section analysis names HALO as the binding section at scale
(Figures 5/6); the textbook response is to overlap the exchange with
the interior computation.  This ablation quantifies the payoff of that
optimization on the modeled cluster across scales — closing the loop
from *diagnosis* (the paper's contribution) to *fix*.
"""

from dataclasses import replace

from repro.core.profile import SectionProfile
from repro.core.report import format_dict_rows
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import ConvolutionBenchmark, ConvolutionConfig

from benchmarks.conftest import save_artifact

BASE = ConvolutionConfig(height=288, width=576, steps=50)


def _walltime_and_halo(cfg, p, seed=0):
    res = ConvolutionBenchmark(cfg).run(
        p,
        machine=nehalem_cluster(nodes=8, jitter=0.05),
        seed=seed,
        compute_jitter=0.02,
        noise_floor=60e-6,
    )
    prof = SectionProfile.from_run(res)
    halo = prof.total("HALO")
    if "HALO_WAIT" in prof.labels():
        halo += prof.total("HALO_WAIT")
    return res.walltime, halo


def test_ablation_halo_overlap(benchmark):
    rows = []
    for p in (8, 16, 32, 64):
        t_block, halo_block = _walltime_and_halo(BASE, p)
        t_over, halo_over = _walltime_and_halo(
            replace(BASE, overlap_halo=True), p
        )
        rows.append(
            {
                "p": p,
                "blocking_wall": t_block,
                "overlap_wall": t_over,
                "gain_pct": 100.0 * (t_block - t_over) / t_block,
                "blocking_halo_total": halo_block,
                "overlap_halo_total": halo_over,
            }
        )
    save_artifact(
        "ablation_overlap",
        format_dict_rows(rows, title="[ablation] blocking vs overlapped halo exchange"),
    )
    # The realistic finding: overlap pays big while the interior work can
    # cover the exchange (>15 % at p=8), the benefit shrinks as per-rank
    # compute vanishes, and at the over-scaled end it is a wash (within a
    # few percent either way) — overlap cannot create compute to hide
    # behind once a section is past its parallelism budget.
    assert rows[0]["gain_pct"] > 15.0
    assert rows[0]["gain_pct"] > rows[-1]["gain_pct"]
    assert all(r["overlap_wall"] <= r["blocking_wall"] * 1.10 for r in rows)
    # Overlap always shrinks the time actually spent in halo sections.
    assert all(r["overlap_halo_total"] < r["blocking_halo_total"] for r in rows)

    benchmark(lambda: _walltime_and_halo(BASE, 8))
