"""Figure 6 — partial speedup bounds inferred from the HALO section.

Regenerates the paper's table (#Processes, Tot. HALO Time, Speedup
Bound B) at the same process counts {64, 80, 112, 128, 144} and verifies
Eq. 6 (every bound caps the measured speedup) plus the strong
noise-driven variation of B the paper reports.
"""

from repro.harness import experiments as E
from repro.harness.sweeps import fig6_process_counts

from benchmarks.conftest import save_artifact


def test_fig6(benchmark, conv_profile):
    result = benchmark(E.fig6, conv_profile, fig6_process_counts())
    save_artifact("fig6", result.render())
    assert result.passed, result.checks


def test_fig6_paper_formula_reproduced(benchmark, conv_profile):
    """Check the exact arithmetic of the paper's example on our data:
    B = T_seq / (T_halo_total / p)."""
    from repro.core.bounding import partial_bound_from_total

    seq = benchmark(conv_profile.sequential_time)
    p = 64
    total = conv_profile.mean_total("HALO", p)
    expected = partial_bound_from_total(seq, total, p)
    row = [r for r in E.fig6(conv_profile, (64,)).rows if r["p"] == 64][0]
    assert abs(row["bound_B"] - expected) < 1e-9
