"""Engine/collective microbenchmarks for the analytic fast path.

Not a paper artifact — these track the perf trajectory of the engine
itself across PRs.  The suite measures, per collective, the baton
handoffs and wall-clock of the analytic fast path against the threaded
message path (results are bit-identical, so the ratio is pure overhead
reduction), plus raw scheduling-step throughput, and merges everything
under the ``"coll_fastpath"`` key of the shared machine-readable
``benchmarks/results/BENCH_engine.json`` (the thread-free engine sweep
in ``test_bench_engine.py`` owns the ``"threadfree"`` key).

Fast mode: set ``REPRO_BENCH_FAST=1`` (the CI bench-smoke job does) to
shrink rank counts and repetition so the whole file finishes in tens of
seconds; the JSON schema is identical either way, with the mode
recorded in the payload.

The headline acceptance number lives in
``test_allreduce_heavy_speedup_p128``: an allreduce-heavy run at p=128
must be >= 3x faster wall-clock with the fast path on (fast mode runs
the same shape at a smaller p with a relaxed bar, full mode enforces
the 3x/p=128 criterion and records it in ``coll_fastpath_p128.txt``).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.machine.catalog import nehalem_cluster
from repro.simmpi import SUM
from repro.simmpi.engine import run_mpi

from benchmarks.conftest import merge_json_artifact, save_artifact

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")

#: (collective label, per-rank body) — one gated invocation per call.
_COLLECTIVES = {
    "barrier": lambda ctx: ctx.comm.barrier(),
    "bcast": lambda ctx: ctx.comm.bcast(b"x" * 256 if ctx.rank == 0 else None),
    "reduce": lambda ctx: ctx.comm.reduce(float(ctx.rank), SUM),
    "allreduce": lambda ctx: ctx.comm.allreduce(ctx.rank, SUM),
    "scan": lambda ctx: ctx.comm.scan(ctx.rank, SUM),
    "exscan": lambda ctx: ctx.comm.exscan(ctx.rank, SUM),
    "scatter": lambda ctx: ctx.comm.scatter(
        list(range(ctx.comm.size)) if ctx.rank == 0 else None),
    "gather": lambda ctx: ctx.comm.gather(ctx.rank),
    "allgather": lambda ctx: ctx.comm.allgather(ctx.rank),
    "alltoall": lambda ctx: ctx.comm.alltoall(
        [ctx.rank] * ctx.comm.size),
}


def _machine(p):
    return nehalem_cluster(nodes=-(-p // 8), jitter=0.1)


def _time_mode(p, body, iters, fast, reps=None):
    """Best-of-N wall-clock + counters of ``iters`` invocations.

    Single-shot timing of a few-millisecond run is dominated by host
    noise — it is what recorded the spurious ``reduce`` ratio of 0.44
    in schema 2.  The minimum over ``reps`` repetitions is the stable
    estimator of the true cost; results are seed-deterministic, so any
    repetition's RunResult stands for all of them.
    """
    if reps is None:
        reps = 2 if FAST_MODE else 3

    def main(ctx):
        for _ in range(iters):
            body(ctx)

    best_t, best_r = None, None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run_mpi(p, main, machine=_machine(p), seed=1, coll_analytic=fast)
        dt = time.perf_counter() - t0
        if best_t is None or dt < best_t:
            best_t, best_r = dt, res
    return best_t, best_r


def test_collective_handoffs_and_fastpath_ratio():
    """Per-collective: handoffs/invocation and fast-vs-message ratio,
    persisted as BENCH_engine.json for cross-PR tracking."""
    p = 16 if FAST_MODE else 64
    iters = 3 if FAST_MODE else 5
    per_coll = {}
    for name, body in _COLLECTIVES.items():
        t_fast, r_fast = _time_mode(p, body, iters, fast=True)
        t_msg, r_msg = _time_mode(p, body, iters, fast=False)
        assert r_fast.clocks == r_msg.clocks  # the differential contract
        assert r_fast.network == r_msg.network
        per_coll[name] = {
            "handoffs_fast": r_fast.baton_handoffs / iters,
            "handoffs_message": r_msg.baton_handoffs / iters,
            "sched_steps_fast": r_fast.sched_steps / iters,
            "sched_steps_message": r_msg.sched_steps / iters,
            "wallclock_ratio_message_over_fast": t_msg / t_fast,
        }
        # The structural win the fast path exists for: ~2p handoffs
        # instead of the pattern's full park/wake traffic.
        assert r_fast.baton_handoffs < r_msg.baton_handoffs

    # Raw scheduling throughput on a handoff-heavy workload.
    def churn(ctx):
        for i in range(10):
            ctx.comm.barrier()

    t0 = time.perf_counter()
    res = run_mpi(p, churn, machine=_machine(p), seed=0, coll_analytic=False)
    steps_per_sec = res.sched_steps / (time.perf_counter() - t0)

    doc = {
        "mode": "fast" if FAST_MODE else "full",
        "ranks": p,
        "iterations": iters,
        "sched_steps_per_sec_message_path": steps_per_sec,
        "collectives": per_coll,
    }
    merge_json_artifact("BENCH_engine", {"schema": 3, "coll_fastpath": doc})


def test_allreduce_heavy_speedup_p128():
    """Acceptance: >= 3x wall-clock at p=128 on an allreduce-heavy run."""
    p = 32 if FAST_MODE else 128
    rounds = 10 if FAST_MODE else 40

    def main(ctx):
        # 16 doubles: a small, latency-bound reduction — the regime the
        # paper's workloads live in, and the one where per-message
        # engine overhead (not payload movement) dominates wall-clock.
        acc = np.zeros(16)
        for _ in range(rounds):
            ctx.compute(1e-6)
            out = np.empty_like(acc)
            ctx.comm.Allreduce(acc + ctx.rank, out, SUM)
            acc = out
        return float(acc[0])

    t_fast, r_fast = _time_mode(p, lambda ctx: None, 0, fast=True)  # warmup
    del t_fast, r_fast

    def bench(fast, reps=2 if FAST_MODE else 5):
        # Best-of-N: shared CI hosts show ±50% wall-clock noise between
        # repetitions; the minimum is the stable estimator of the true
        # cost.  Results are seed-deterministic, so any rep's RunResult
        # stands for all of them.
        t_best, r_best = None, None
        for _ in range(reps):
            t0 = time.perf_counter()
            res = run_mpi(p, main, machine=_machine(p), seed=4,
                          coll_analytic=fast)
            dt = time.perf_counter() - t0
            if t_best is None or dt < t_best:
                t_best, r_best = dt, res
        return t_best, r_best

    t_on, on = bench(fast=True)
    t_off, off = bench(fast=False)
    assert on.clocks == off.clocks
    assert on.results == off.results
    speedup = t_off / t_on
    lines = [
        f"analytic collective fast path: allreduce-heavy run at p={p}",
        f"  rounds:               {rounds} Allreduce(16 doubles) + compute",
        f"  message path:         {t_off:8.3f} s  "
        f"({off.baton_handoffs} baton handoffs)",
        f"  fast path:            {t_on:8.3f} s  "
        f"({on.baton_handoffs} baton handoffs)",
        f"  wall-clock speedup:   {speedup:8.2f} x",
        f"  handoff reduction:    "
        f"{off.baton_handoffs / on.baton_handoffs:8.2f} x",
        "  clocks/results bit-identical: yes",
    ]
    save_artifact("coll_fastpath_p128", "\n".join(lines))
    if FAST_MODE:
        assert speedup > 1.5
    else:
        # The PR acceptance criterion: >= 3x at p=128.
        assert speedup >= 3.0
