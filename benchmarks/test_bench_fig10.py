"""Figure 10 — pure-OpenMP walltime and speedup on the KNL (p=1, s=48).

The paper's flagship demonstration: the Lagrange sections' duration
stops decreasing at an inflexion point (24 threads in the paper); the
partial speedup bound computed there from the two sections (8.16x)
matches the measured speedup (8.08x) almost exactly, and every single
section bounds the speedup on its own (Eq. 6).
"""

from repro.harness import experiments as E

from benchmarks.conftest import save_artifact


def test_fig10(benchmark, knl_grid):
    result = benchmark(E.fig10, knl_grid)
    save_artifact("fig10", result.render())
    assert result.passed, result.checks


def test_fig10_bound_tightness_matches_paper_relationship(benchmark, knl_grid):
    """Paper: bound 8.16 vs measured 8.08 at the inflexion — the
    two-phase bound is within a few percent of the measured speedup
    because the Lagrange phases account for nearly all the time."""
    out = benchmark(knl_grid.bound_at_inflexion, "LagrangeElements", 1)
    assert out is not None
    pt, _ = out
    measured = knl_grid.speedup(1, pt.p)
    bound = knl_grid.bound_from_sections(
        ["LagrangeNodal", "LagrangeElements"], 1, pt.p
    )
    assert measured <= bound
    assert (bound - measured) / measured < 0.10


def test_fig10_every_section_bounds_speedup(benchmark, knl_grid):
    """Eq. 6 on the real grid: for every thread count, each Lagrange
    section's individual bound caps the measured speedup."""
    seq = benchmark(knl_grid.sequential_time)
    for t in knl_grid.thread_counts(1):
        measured = knl_grid.speedup(1, t)
        for label in ("LagrangeNodal", "LagrangeElements"):
            sect = knl_grid.mean_avg_section(label, 1, t)
            assert measured <= seq / sect * 1.02, (t, label)
