"""Figure 9 — Lulesh MPI Sections on the Intel KNL grid.

Same views as Figure 8, with the KNL-specific claims: OpenMP overhead
rises faster than on Broadwell, and at 27/64 MPI processes extra
OpenMP threads provide no acceleration (and tend to slow the code).
"""

from repro.harness import experiments as E

from benchmarks.conftest import save_artifact


def test_fig9(benchmark, knl_grid):
    result = benchmark(E.fig9, knl_grid)
    save_artifact("fig9", result.render())
    assert result.passed, result.checks


def test_fig9_machine_dependence_vs_broadwell(benchmark, knl_grid, bdw_grid):
    """'A given execution configuration can be strongly impacted by the
    executing hardware': the KNL exhausts its parallelism budget at a
    far smaller fraction of its thread capacity than the Broadwell —
    its pure-OpenMP optimum sits at ~16–24 of 272 hardware threads,
    while Broadwell's sits around 24 of 72."""
    from repro.machine.catalog import broadwell_duo, knl_node

    def opt_fraction(grid, hw_threads):
        ts, walls = grid.walltime_series(1)
        t_best = ts[walls.index(min(walls))]
        return t_best / hw_threads

    knl_frac = benchmark(opt_fraction, knl_grid, knl_node().node.max_threads)
    bdw_frac = opt_fraction(bdw_grid, broadwell_duo().node.max_threads)
    assert knl_frac < 0.5 * bdw_frac
    # and past its optimum the KNL degrades catastrophically (the
    # oversubscription cliff of Figure 9/10's right edge).
    ts, walls = knl_grid.walltime_series(1)
    assert walls[ts.index(max(ts))] > 5 * min(walls)
