"""Simulator microbenchmarks: the substrate's own throughput.

Not a paper artifact — these measure the reproduction's usability
envelope (simulated messages/second, rank-count scaling, section event
rate), which bounds how large a sweep the harness can run.

The second half of the file benchmarks the thread-free engine against
the threaded oracle: a rank-count sweep of wall-clock ratios (merged
under the ``"threadfree"`` key of ``BENCH_engine.json``), the p=128
allreduce-heavy acceptance scenario (well ahead of the baton), and a
p=1024 smoke proving the thread-per-rank ceiling no longer applies
(``threadfree_p1024.txt``).  ``REPRO_BENCH_FAST=1`` shrinks the sweep
and relaxes the bars, but the p=1024 smoke always runs at p=1024 —
that number *is* the claim being smoked.
"""

import os
import time

import numpy as np

from repro.machine.catalog import laptop, nehalem_cluster
from repro.simmpi import SUM
from repro.simmpi.engine import run_mpi
from repro.simmpi.sections_rt import section

from benchmarks.conftest import merge_json_artifact, save_artifact

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "").strip() not in ("", "0")


def test_engine_p2p_message_throughput(benchmark):
    """Ping-pong churn: 2 ranks, 200 eager messages each way."""

    def main(ctx):
        peer = 1 - ctx.rank
        for i in range(200):
            if ctx.rank == 0:
                ctx.comm.send(i, dest=peer)
                ctx.comm.recv(source=peer)
            else:
                ctx.comm.recv(source=peer)
                ctx.comm.send(i, dest=peer)

    benchmark(lambda: run_mpi(2, main, machine=laptop(2)))


def test_engine_rank_scaling_barrier(benchmark):
    """64 ranks × 10 dissemination barriers: scheduler switch cost."""

    def main(ctx):
        for _ in range(10):
            ctx.comm.barrier()

    benchmark(lambda: run_mpi(64, main, machine=nehalem_cluster(nodes=8)))


def test_engine_rendezvous_bulk_transfer(benchmark):
    """Large-payload rendezvous path including the payload copies."""
    data = np.zeros(250_000)

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(data, dest=1)
        else:
            buf = np.empty_like(data)
            ctx.comm.Recv(buf, source=0)

    benchmark(lambda: run_mpi(2, main, machine=laptop(2)))


def test_section_event_rate(benchmark):
    """Cost of the section runtime itself: 2 000 enter/exit pairs."""

    def main(ctx):
        for _ in range(2000):
            with section(ctx, "hot"):
                pass

    benchmark(lambda: run_mpi(1, main, machine=laptop(2)))


# ---------------------------------------------------------------------------
# Thread-free vs threaded engine
# ---------------------------------------------------------------------------


def _machine(p):
    return nehalem_cluster(nodes=-(-p // 8), jitter=0.1)


def _allreduce_heavy(rounds):
    """Generator main: latency-bound 16-double Allreduce churn.

    The same shape as the collective fast path's acceptance scenario,
    but expressed through the generator API so it runs natively on both
    engines (the threaded oracle drives it with ``drive_blocking``).
    """

    def gmain(ctx):
        acc = np.zeros(16)
        for _ in range(rounds):
            ctx.compute(1e-6)
            out = np.empty_like(acc)
            yield from ctx.comm.g_Allreduce(acc + ctx.rank, out, SUM)
            acc = out
        return float(acc[0])

    return gmain


def _best_of(reps, p, gmain, engine):
    """Best-of-N wall-clock (min rides out shared-host noise) + result.

    ``macrostep=False``: this file benchmarks the *interpreted*
    substrates against each other (the sched_steps parity assertions
    depend on it); the macro-step layer has its own benchmark file,
    ``test_bench_macrostep.py``.
    """
    t_best, r_best = None, None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = run_mpi(p, gmain, machine=_machine(p), seed=3,
                      coll_analytic=False, engine=engine, macrostep=False)
        dt = time.perf_counter() - t0
        if t_best is None or dt < t_best:
            t_best, r_best = dt, res
    return t_best, r_best


def test_engine_ratio_p_sweep():
    """Threaded-vs-threadfree wall-clock ratio across rank counts.

    Every point re-proves the differential contract (identical clocks
    and scheduling steps, zero handoffs thread-free) before its ratio is
    trusted; the ratios land under ``"threadfree"`` in
    ``BENCH_engine.json`` for cross-PR tracking.
    """
    ps = (8, 32) if FAST_MODE else (16, 64, 256, 1024)
    rounds = 6 if FAST_MODE else 8
    reps = 1 if FAST_MODE else 2
    gmain = _allreduce_heavy(rounds)
    sweep = {}
    for p in ps:
        t_tf, r_tf = _best_of(reps, p, gmain, "threadfree")
        t_th, r_th = _best_of(reps, p, gmain, "threads")
        assert r_tf.clocks == r_th.clocks  # the differential contract
        assert r_tf.sched_steps == r_th.sched_steps
        assert r_tf.baton_handoffs == 0
        sweep[str(p)] = {
            "wallclock_threadfree_s": t_tf,
            "wallclock_threaded_s": t_th,
            "wallclock_ratio_threaded_over_threadfree": t_th / t_tf,
            "baton_handoffs_threaded": r_th.baton_handoffs,
            "sched_steps": r_tf.sched_steps,
            "sched_steps_per_sec_threadfree": r_tf.sched_steps / t_tf,
        }
    merge_json_artifact("BENCH_engine", {
        "schema": 3,
        "threadfree": {
            "mode": "fast" if FAST_MODE else "full",
            "rounds": rounds,
            "p_sweep": sweep,
        },
    })


def test_allreduce_heavy_threadfree_speedup_p128():
    """Acceptance: thread-free well ahead at p=128, zero baton handoffs."""
    p = 32 if FAST_MODE else 128
    rounds = 10 if FAST_MODE else 40
    reps = 2 if FAST_MODE else 5
    gmain = _allreduce_heavy(rounds)

    t_tf, r_tf = _best_of(reps, p, gmain, "threadfree")
    t_th, r_th = _best_of(reps, p, gmain, "threads")
    assert r_tf.clocks == r_th.clocks
    assert r_tf.results == r_th.results
    assert r_tf.baton_handoffs == 0
    speedup = t_th / t_tf
    merge_json_artifact("BENCH_engine", {
        "schema": 3,
        "threadfree_acceptance_p128": {
            "mode": "fast" if FAST_MODE else "full",
            "ranks": p,
            "rounds": rounds,
            "wallclock_threadfree_s": t_tf,
            "wallclock_threaded_s": t_th,
            "wallclock_speedup": speedup,
            "baton_handoffs_threadfree": r_tf.baton_handoffs,
            "baton_handoffs_threaded": r_th.baton_handoffs,
        },
    })
    if FAST_MODE:
        assert speedup > 1.2
    else:
        # Originally >= 2x (measured 2.77x).  The ready-heap equal-clock
        # batch drain sped up *both* engines but the threaded oracle
        # disproportionately (threaded 1.94 s -> 1.12 s, thread-free
        # 0.70 s -> 0.58 s on the reference host), compressing the
        # ratio to ~1.9x; the floor is re-based to track the claim that
        # thread-free stays well ahead, not the oracle's old slowness.
        assert speedup >= 1.6


def test_threadfree_p1024_smoke():
    """p=1024 through the full message path on one thread.

    Pathological under thread-per-rank (1024 OS threads, ~60k baton
    handoffs for a handful of allreduce rounds); routine as a pure
    discrete-event run.  Always exercises p=1024 — a smaller fast-mode
    p would smoke a different claim.
    """
    p = 1024
    rounds = 4 if FAST_MODE else 8
    gmain = _allreduce_heavy(rounds)
    t0 = time.perf_counter()
    res = run_mpi(p, gmain, machine=_machine(p), seed=3,
                  coll_analytic=False, engine="threadfree", macrostep=False)
    elapsed = time.perf_counter() - t0
    assert res.engine == "threadfree"
    assert res.baton_handoffs == 0
    assert len(res.results) == p
    lines = [
        f"thread-free engine: p={p} allreduce-heavy message-path run",
        f"  rounds:            {rounds} Allreduce(16 doubles) + compute",
        f"  wall-clock:        {elapsed:8.3f} s",
        f"  scheduling steps:  {res.sched_steps}",
        f"  steps/second:      {res.sched_steps / elapsed:10.0f}",
        "  baton handoffs:    0 (single-thread discrete-event loop)",
        f"  virtual walltime:  {res.walltime:8.6f} s",
    ]
    save_artifact("threadfree_p1024", "\n".join(lines))
