"""Simulator microbenchmarks: the substrate's own throughput.

Not a paper artifact — these measure the reproduction's usability
envelope (simulated messages/second, rank-count scaling, section event
rate), which bounds how large a sweep the harness can run.
"""

import numpy as np

from repro.machine.catalog import laptop, nehalem_cluster
from repro.simmpi.engine import run_mpi
from repro.simmpi.sections_rt import section


def test_engine_p2p_message_throughput(benchmark):
    """Ping-pong churn: 2 ranks, 200 eager messages each way."""

    def main(ctx):
        peer = 1 - ctx.rank
        for i in range(200):
            if ctx.rank == 0:
                ctx.comm.send(i, dest=peer)
                ctx.comm.recv(source=peer)
            else:
                ctx.comm.recv(source=peer)
                ctx.comm.send(i, dest=peer)

    benchmark(lambda: run_mpi(2, main, machine=laptop(2)))


def test_engine_rank_scaling_barrier(benchmark):
    """64 ranks × 10 dissemination barriers: scheduler switch cost."""

    def main(ctx):
        for _ in range(10):
            ctx.comm.barrier()

    benchmark(lambda: run_mpi(64, main, machine=nehalem_cluster(nodes=8)))


def test_engine_rendezvous_bulk_transfer(benchmark):
    """Large-payload rendezvous path including the payload copies."""
    data = np.zeros(250_000)

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(data, dest=1)
        else:
            buf = np.empty_like(data)
            ctx.comm.Recv(buf, source=0)

    benchmark(lambda: run_mpi(2, main, machine=laptop(2)))


def test_section_event_rate(benchmark):
    """Cost of the section runtime itself: 2 000 enter/exit pairs."""

    def main(ctx):
        for _ in range(2000):
            with section(ctx, "hot"):
                pass

    benchmark(lambda: run_mpi(1, main, machine=laptop(2)))
