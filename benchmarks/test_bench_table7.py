"""Figure 7 (table) — Lulesh strong-scaling configurations.

The invariant table itself, plus a live verification that running the
proxy at each configuration really holds the global element count at
110 592 and produces identical physics across decompositions.
"""

import numpy as np

from repro.harness import experiments as E
from repro.machine.catalog import knl_node
from repro.workloads.lulesh import (
    LuleshBenchmark,
    LuleshConfig,
    lulesh_strong_scaling_configs,
)

from benchmarks.conftest import save_artifact


def test_table7(benchmark):
    result = benchmark(E.table7)
    save_artifact("table7", result.render())
    assert result.passed, result.checks


def test_table7_configurations_run_and_agree(benchmark):
    """The first two Figure 7 configurations produce bitwise-identical
    energy fields (48^3 global mesh, 3 steps) — the strong-scaling
    invariant is physical, not just arithmetical."""
    configs = benchmark(lulesh_strong_scaling_configs)[:2]  # (1, 48), (8, 24)
    fields = []
    for p, s in configs:
        bench = LuleshBenchmark(LuleshConfig(s=s, steps=3, return_fields=True))
        _, phys = bench.run(p, machine=knl_node(jitter=0.0))
        assert phys.energy_drift < 1e-12
        fields.append(phys.energy_field)
    assert fields[0].shape == fields[1].shape == (48, 48, 48)
    assert np.array_equal(fields[0], fields[1])
