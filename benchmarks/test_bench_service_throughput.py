"""Service-layer benchmarks: warm-path throughput and concurrent jobs.

Not a paper artifact — these guard the ``repro.service`` subsystem:

* warm-path requests/sec: a resubmit of completed work is answered from
  the experiment registry without touching the queue or the harness, so
  the app layer should sustain hundreds of such requests per second;
* the same warm path over a real HTTP socket (client + server + JSON
  round-trip), which bounds what one synchronous client observes;
* end-to-end concurrent job throughput: eight distinct sweep jobs pushed
  through the scheduler at once (the ISSUE acceptance bar) and drained
  to completion.
"""

from __future__ import annotations

import json
import os
import time

from repro.service.api import ServiceApp
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

from benchmarks.conftest import merge_json_artifact, save_artifact

TINY_SPEC = {
    "kind": "convolution",
    "client": "bench",
    "workload": {"height": 64, "width": 96, "steps": 5},
    "machine": {"name": "nehalem", "nodes": 4},
    "process_counts": [1, 2, 4],
    "reps": 1,
    "base_seed": 100,
}


def _spec(seed: int = 100) -> dict:
    spec = dict(TINY_SPEC)
    spec["base_seed"] = seed
    return spec


def _run_to_completion(app: ServiceApp, spec: dict, timeout: float = 60.0) -> str:
    """Submit one spec and poll the app until its record is done."""
    status, _, body = app.handle("POST", "/api/v1/jobs", {},
                                 json.dumps(spec).encode())
    assert status in (200, 202), body
    job_id = json.loads(body)["job_id"]
    deadline = time.time() + timeout
    while True:
        record = json.loads(app.handle("GET", f"/api/v1/jobs/{job_id}")[2])
        if record["status"] == "done":
            return job_id
        assert record["status"] in ("queued", "running"), record
        assert time.time() < deadline, "benchmark job never finished"
        time.sleep(0.01)


def test_warm_submit_throughput_in_process(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1)
    app.start()
    try:
        _run_to_completion(app, _spec())
        payload = json.dumps(_spec()).encode()
        n = 200
        t0 = time.perf_counter()
        for _ in range(n):
            status, _, body = app.handle("POST", "/api/v1/jobs", {}, payload)
            assert status == 200 and json.loads(body)["cached"] is True
        elapsed = time.perf_counter() - t0
    finally:
        app.close()
    rate = n / elapsed
    lines = [
        "service warm-path throughput (in-process, registry-served)",
        f"  requests:      {n}",
        f"  wall-clock:    {elapsed:8.3f} s",
        f"  requests/sec:  {rate:8.1f}",
    ]
    save_artifact("service_warm_throughput", "\n".join(lines))
    # each request is one JSON parse + one registry file read; anything
    # below this means the warm path regressed into real work
    assert rate > 50


def test_warm_submit_throughput_over_http(tmp_path):
    server = ServiceServer(ServiceApp(cache_dir=tmp_path / "cache", workers=1))
    server.start()
    try:
        client = ServiceClient(server.url)
        job_id = client.submit(_spec())["job_id"]
        client.wait(job_id, timeout=60)
        n = 50
        t0 = time.perf_counter()
        for _ in range(n):
            assert client.submit(_spec())["cached"] is True
        elapsed = time.perf_counter() - t0
    finally:
        server.stop()
    rate = n / elapsed
    lines = [
        "service warm-path throughput (HTTP, single synchronous client)",
        f"  requests:      {n}",
        f"  wall-clock:    {elapsed:8.3f} s",
        f"  requests/sec:  {rate:8.1f}",
    ]
    save_artifact("service_warm_throughput_http", "\n".join(lines))
    assert rate > 10


#: A cold job heavy enough that execution dominates dispatch overhead.
COLD_WORKLOAD = {"height": 128, "width": 192, "steps": 40}


def _cold_spec(seed: int) -> dict:
    spec = _spec(seed)
    spec["workload"] = dict(COLD_WORKLOAD)
    spec["process_counts"] = [1, 2, 4, 8]
    return spec


def _run_cold_batch(tmp_path, mode: str, n: int, workers: int):
    """Time ``n`` cold jobs through one scheduler mode; returns stats."""
    app = ServiceApp(cache_dir=tmp_path / f"{mode}-cache", workers=workers,
                     worker_mode=mode, queue_limit=64, per_client=64)
    ids = []
    for seed in range(1, n + 1):
        status, _, body = app.handle(
            "POST", "/api/v1/jobs", {},
            json.dumps(_cold_spec(seed)).encode())
        assert status == 202
        ids.append(json.loads(body)["job_id"])
    assert app.queue.in_flight() == n
    t0 = time.perf_counter()
    app.start()
    try:
        deadline = time.time() + 600
        for job_id in ids:
            while json.loads(
                app.handle("GET", f"/api/v1/jobs/{job_id}")[2]
            )["status"] != "done":
                assert time.time() < deadline, "cold jobs never drained"
                time.sleep(0.01)
        elapsed = time.perf_counter() - t0
        assert app.metrics.counter("jobs_completed") == n
        lat = app.metrics.snapshot()["latency"]
    finally:
        app.close()
    return {"elapsed": elapsed, "jobs_per_sec": n / elapsed,
            "p50_ms": lat["p50"] * 1e3, "p95_ms": lat["p95"] * 1e3}


def test_cold_job_throughput_process_vs_thread(tmp_path):
    """The ISSUE acceptance bar: supervised multi-process workers beat
    the single-process (GIL-bound) thread scheduler >= 3x on cold jobs.

    The speedup needs real cores; the assertion is gated on
    ``os.cpu_count() >= 4`` so single-core hosts still record honest
    numbers without failing on physics.
    """
    n, workers = 8, 4
    cores = os.cpu_count() or 1
    thread = _run_cold_batch(tmp_path, "thread", n, workers)
    process = _run_cold_batch(tmp_path, "process", n, workers)
    ratio = thread["elapsed"] / process["elapsed"]
    lines = [
        f"service cold-job throughput ({n} jobs, {workers} workers, "
        f"{cores} cores)",
        f"  thread mode:   {thread['elapsed']:8.3f} s "
        f"({thread['jobs_per_sec']:.2f} jobs/s, "
        f"p95 {thread['p95_ms']:.0f} ms)",
        f"  process mode:  {process['elapsed']:8.3f} s "
        f"({process['jobs_per_sec']:.2f} jobs/s, "
        f"p95 {process['p95_ms']:.0f} ms)",
        f"  speedup:       {ratio:8.2f} x",
    ]
    if cores < 4:
        lines.append(f"  note: only {cores} core(s); the >=3x bar needs "
                     ">=4 and is not asserted here")
    save_artifact("service_concurrency", "\n".join(lines))
    merge_json_artifact("BENCH_service", {
        "cold_throughput": {
            "jobs": n, "workers": workers, "cores": cores,
            "thread": thread, "process": process,
            "speedup": round(ratio, 3),
            "bar_asserted": cores >= 4,
        },
    })
    if cores >= 4:
        assert ratio >= 3.0, (
            f"process workers only {ratio:.2f}x over the thread scheduler")
