"""Service-layer benchmarks: warm-path throughput and concurrent jobs.

Not a paper artifact — these guard the ``repro.service`` subsystem:

* warm-path requests/sec: a resubmit of completed work is answered from
  the experiment registry without touching the queue or the harness, so
  the app layer should sustain hundreds of such requests per second;
* the same warm path over a real HTTP socket (client + server + JSON
  round-trip), which bounds what one synchronous client observes;
* end-to-end concurrent job throughput: eight distinct sweep jobs pushed
  through the scheduler at once (the ISSUE acceptance bar) and drained
  to completion.
"""

from __future__ import annotations

import json
import time

from repro.service.api import ServiceApp
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

from benchmarks.conftest import save_artifact

TINY_SPEC = {
    "kind": "convolution",
    "client": "bench",
    "workload": {"height": 64, "width": 96, "steps": 5},
    "machine": {"name": "nehalem", "nodes": 4},
    "process_counts": [1, 2, 4],
    "reps": 1,
    "base_seed": 100,
}


def _spec(seed: int = 100) -> dict:
    spec = dict(TINY_SPEC)
    spec["base_seed"] = seed
    return spec


def _run_to_completion(app: ServiceApp, spec: dict, timeout: float = 60.0) -> str:
    """Submit one spec and poll the app until its record is done."""
    status, _, body = app.handle("POST", "/api/v1/jobs", {},
                                 json.dumps(spec).encode())
    assert status in (200, 202), body
    job_id = json.loads(body)["job_id"]
    deadline = time.time() + timeout
    while True:
        record = json.loads(app.handle("GET", f"/api/v1/jobs/{job_id}")[2])
        if record["status"] == "done":
            return job_id
        assert record["status"] in ("queued", "running"), record
        assert time.time() < deadline, "benchmark job never finished"
        time.sleep(0.01)


def test_warm_submit_throughput_in_process(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1)
    app.start()
    try:
        _run_to_completion(app, _spec())
        payload = json.dumps(_spec()).encode()
        n = 200
        t0 = time.perf_counter()
        for _ in range(n):
            status, _, body = app.handle("POST", "/api/v1/jobs", {}, payload)
            assert status == 200 and json.loads(body)["cached"] is True
        elapsed = time.perf_counter() - t0
    finally:
        app.close()
    rate = n / elapsed
    lines = [
        "service warm-path throughput (in-process, registry-served)",
        f"  requests:      {n}",
        f"  wall-clock:    {elapsed:8.3f} s",
        f"  requests/sec:  {rate:8.1f}",
    ]
    save_artifact("service_warm_throughput", "\n".join(lines))
    # each request is one JSON parse + one registry file read; anything
    # below this means the warm path regressed into real work
    assert rate > 50


def test_warm_submit_throughput_over_http(tmp_path):
    server = ServiceServer(ServiceApp(cache_dir=tmp_path / "cache", workers=1))
    server.start()
    try:
        client = ServiceClient(server.url)
        job_id = client.submit(_spec())["job_id"]
        client.wait(job_id, timeout=60)
        n = 50
        t0 = time.perf_counter()
        for _ in range(n):
            assert client.submit(_spec())["cached"] is True
        elapsed = time.perf_counter() - t0
    finally:
        server.stop()
    rate = n / elapsed
    lines = [
        "service warm-path throughput (HTTP, single synchronous client)",
        f"  requests:      {n}",
        f"  wall-clock:    {elapsed:8.3f} s",
        f"  requests/sec:  {rate:8.1f}",
    ]
    save_artifact("service_warm_throughput_http", "\n".join(lines))
    assert rate > 10


def test_concurrent_job_throughput(tmp_path):
    """Eight distinct sweep jobs in flight at once, drained to done."""
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=4,
                     queue_limit=64, per_client=8)
    ids = []
    for seed in range(1, 9):
        status, _, body = app.handle(
            "POST", "/api/v1/jobs", {},
            json.dumps(_spec(seed)).encode())
        assert status == 202
        ids.append(json.loads(body)["job_id"])
    assert app.queue.in_flight() == 8
    t0 = time.perf_counter()
    app.start()
    try:
        deadline = time.time() + 120
        for job_id in ids:
            while json.loads(
                app.handle("GET", f"/api/v1/jobs/{job_id}")[2]
            )["status"] != "done":
                assert time.time() < deadline, "concurrent jobs never drained"
                time.sleep(0.01)
        elapsed = time.perf_counter() - t0
        assert app.metrics.counter("jobs_completed") == 8
        lat = app.metrics.snapshot()["latency"]
    finally:
        app.close()
    lines = [
        "service concurrent-job throughput (8 jobs, 4 workers)",
        f"  wall-clock:   {elapsed:8.3f} s",
        f"  jobs/sec:     {8 / elapsed:8.2f}",
        f"  p50 latency:  {lat['p50'] * 1e3:8.1f} ms",
        f"  p95 latency:  {lat['p95'] * 1e3:8.1f} ms",
    ]
    save_artifact("service_concurrency", "\n".join(lines))
