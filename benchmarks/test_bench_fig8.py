"""Figure 8 — Lulesh MPI Sections on the dual Broadwell grid.

Regenerates the per-section time-vs-threads series at p ∈ {1, 8, 27} and
asserts the paper's qualitative claims: in this strong-scaling setup MPI
provides more acceleration than OpenMP, while OpenMP still helps when
the per-process problem is large.
"""

from repro.harness import experiments as E

from benchmarks.conftest import save_artifact


def test_fig8(benchmark, bdw_grid):
    result = benchmark(E.fig8, bdw_grid)
    save_artifact("fig8", result.render())
    assert result.passed, result.checks


def test_fig8_lagrange_phases_dominate(benchmark, bdw_grid):
    """The two Lagrange sections 'contribute to most of the main
    section (denoted walltime)' at every configuration."""
    benchmark(bdw_grid.process_counts)
    for p in bdw_grid.process_counts():
        for t in bdw_grid.thread_counts(p):
            lag = bdw_grid.mean_avg_section(
                "LagrangeNodal", p, t
            ) + bdw_grid.mean_avg_section("LagrangeElements", p, t)
            assert lag > 0.75 * bdw_grid.mean_walltime(p, t)
