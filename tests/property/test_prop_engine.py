"""Property-based engine behaviours: routing, determinism, balance."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.catalog import nehalem_cluster
from repro.simmpi.engine import run_mpi

from tests.conftest import mpi

SMALL = dict(max_examples=15, deadline=None)


@st.composite
def permutations(draw):
    p = draw(st.integers(min_value=1, max_value=8))
    perm = list(range(p))
    seed = draw(st.integers(0, 2**31 - 1))
    np.random.default_rng(seed).shuffle(perm)
    return perm


@given(permutations())
@settings(**SMALL)
def test_permutation_routing_delivers_exactly_once(perm):
    """Every rank sends to perm[rank]; every rank receives exactly the
    message addressed to it, whatever the permutation (self-sends,
    cycles, fixed points)."""

    def main(ctx):
        comm = ctx.comm
        dest = perm[comm.rank]
        req = comm.isend(("token", comm.rank), dest=dest)
        got = comm.recv(source=perm.index(comm.rank))
        req.wait()
        return got

    res = mpi(len(perm), main)
    for r, got in enumerate(res.results):
        assert got == ("token", perm.index(r))


@given(st.integers(min_value=2, max_value=6),
       st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=10),
       st.integers(0, 2**31 - 1))
@settings(**SMALL)
def test_random_program_is_seed_deterministic(p, ops, seed):
    """A random mix of collectives and neighbour traffic produces
    bit-identical clocks under an identical seed, even with jitter on."""

    def main(ctx):
        comm = ctx.comm
        for op in ops:
            if op == 0:
                comm.barrier()
            elif op == 1:
                comm.allreduce(ctx.rank + 1)
            elif op == 2:
                ctx.compute(flops=1e6 * (1 + ctx.rank))
            else:
                comm.sendrecv(ctx.rank, dest=(comm.rank + 1) % p,
                              source=(comm.rank - 1) % p)
        return ctx.now

    mach = nehalem_cluster(nodes=1, jitter=0.15)
    r1 = run_mpi(p, main, machine=mach, seed=seed, compute_jitter=0.05)
    r2 = run_mpi(p, main, machine=mach, seed=seed, compute_jitter=0.05)
    assert r1.clocks == r2.clocks


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=5))
@settings(**SMALL)
def test_clock_never_decreases_across_events(p, rounds):
    """Per-rank timestamps of the section stream are monotone whatever
    the communication pattern."""

    def main(ctx):
        from repro.simmpi.sections_rt import section

        comm = ctx.comm
        for i in range(rounds):
            with section(ctx, f"round{i}"):
                comm.allreduce(i)
                ctx.compute(1e-5)

    res = mpi(p, main)
    per_rank = {}
    for ev in res.section_events:
        per_rank.setdefault(ev.rank, []).append(ev.time)
    for times in per_rank.values():
        assert times == sorted(times)


@given(st.integers(min_value=2, max_value=8))
@settings(**SMALL)
def test_barrier_clock_convergence(p):
    """After a barrier, the spread of rank clocks is bounded by the
    barrier's own message depth — no rank is left behind."""

    def main(ctx):
        ctx.compute(0.001 * ctx.rank)
        ctx.comm.barrier()
        return ctx.now

    res = mpi(p, main)
    spread = max(res.results) - min(res.results)
    assert spread < 1e-4  # microsecond-scale message skew only
