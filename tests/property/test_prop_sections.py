"""Property-based tests on section semantics and Figure 3 metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import SectionInstanceTiming
from repro.core.sections import build_instances, rank_section_times
from repro.simmpi.sections_rt import section

from tests.conftest import mpi

SETTINGS = dict(max_examples=25, deadline=None)

labels = st.sampled_from(["A", "B", "C"])

# Random well-nested section programs as nested lists of labels.
programs = st.recursive(
    labels.map(lambda lab: (lab, [])),
    lambda kids: st.tuples(labels, st.lists(kids, max_size=3)),
    max_leaves=8,
)


def _run_program(ctx, node, dt):
    lab, kids = node
    with section(ctx, lab):
        ctx.compute(dt)
        for kid in kids:
            _run_program(ctx, kid, dt)


@given(programs, st.integers(min_value=1, max_value=4),
       st.floats(min_value=1e-4, max_value=0.1))
@settings(**SETTINGS)
def test_arbitrary_nested_programs_balance_and_account(program, p, dt):
    """Any well-nested section program yields a balanced event stream whose
    exclusive times sum to each rank's MPI_MAIN inclusive time."""

    def main(ctx):
        _run_program(ctx, program, dt)

    res = mpi(p, main)
    times = rank_section_times(res.section_events)
    for rank in range(p):
        main_inc = next(
            pt.inclusive[rank] for path, pt in times.items()
            if path == ("MPI_MAIN",)
        )
        excl_sum = sum(pt.exclusive.get(rank, 0.0) for pt in times.values())
        assert abs(excl_sum - main_inc) < 1e-9
        # exclusive never exceeds inclusive
        for pt in times.values():
            if rank in pt.inclusive:
                assert pt.exclusive[rank] <= pt.inclusive[rank] + 1e-12


@given(programs, st.integers(min_value=1, max_value=3))
@settings(**SETTINGS)
def test_instances_have_full_rank_participation(program, p):
    def main(ctx):
        _run_program(ctx, program, 1e-4)

    res = mpi(p, main)
    for inst in build_instances(res.section_events):
        assert set(inst.timing.t_in) == set(range(p))


@st.composite
def instance_timings(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    inst = SectionInstanceTiming("X", ("w",), 0)
    base = draw(st.floats(min_value=0.0, max_value=100.0))
    for r in range(n):
        t_in = base + draw(st.floats(min_value=0.0, max_value=5.0))
        dur = draw(st.floats(min_value=0.0, max_value=5.0))
        inst.t_in[r] = t_in
        inst.t_out[r] = t_in + dur
    return inst


@given(instance_timings())
@settings(max_examples=100)
def test_fig3_metric_invariants(inst):
    """Structural facts of the Figure 3 quantities for any instance."""
    assert inst.tmin <= inst.tmax
    assert inst.span >= 0
    for r in inst.ranks:
        assert inst.entry_imbalance(r) >= 0
        assert inst.tsection(r) >= inst.dwell(r) - 1e-12
        assert inst.tsection(r) <= inst.span + 1e-12
    assert 0 <= inst.entry_imbalance_mean <= inst.span + 1e-12
    assert inst.entry_imbalance_var >= 0
    assert -1e-12 <= inst.imbalance <= inst.span + 1e-12
    assert inst.mean_tsection <= inst.span + 1e-12
