"""Property-based tests on the speedup laws and partial bounding."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounding import SpeedupBounder, modeled_speedup, partial_bound_from_total
from repro.core.inflexion import find_inflexion
from repro.core.speedup import (
    amdahl_speedup,
    fit_amdahl,
    gustafson_speedup,
    karp_flatt,
)

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
procs = st.integers(min_value=1, max_value=10_000)
pos_time = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False,
                     allow_infinity=False)


@given(procs, fractions)
def test_amdahl_between_one_and_p(p, fs):
    s = amdahl_speedup(p, fs)
    assert 1.0 - 1e-12 <= s <= p + 1e-9


@given(procs, fractions)
def test_amdahl_monotone_decreasing_in_fs(p, fs):
    s1 = amdahl_speedup(p, fs)
    s2 = amdahl_speedup(p, min(1.0, fs + 0.1))
    assert s2 <= s1 + 1e-12


@given(procs, fractions)
def test_gustafson_dominates_amdahl(p, fs):
    assert gustafson_speedup(p, fs) >= amdahl_speedup(p, fs) - 1e-9


@given(st.integers(min_value=2, max_value=5000),
       st.floats(min_value=1e-6, max_value=0.999))
def test_karp_flatt_inverts_amdahl(p, fs):
    s = amdahl_speedup(p, fs)
    assert abs(karp_flatt(s, p) - fs) < 1e-6


@given(st.floats(min_value=1e-4, max_value=0.9),
       st.lists(st.integers(min_value=2, max_value=4096), min_size=2,
                max_size=8, unique=True))
def test_fit_amdahl_roundtrip(fs, ps):
    ss = [amdahl_speedup(p, fs) for p in ps]
    fit, rmse = fit_amdahl(ps, ss)
    assert abs(fit - fs) < 1e-6
    assert rmse < 1e-9


@given(st.dictionaries(st.sampled_from("abcdef"), pos_time, min_size=1),
       st.integers(min_value=1, max_value=512))
@settings(max_examples=60)
def test_every_section_bound_caps_eq5_speedup(seq_sections, p):
    """Eq. 6 as a theorem: the modeled speedup (Eq. 5) never exceeds any
    single section's partial bound, for arbitrary positive decompositions."""
    rng = np.random.default_rng(42)
    par_sections = {
        k: v / p * float(rng.uniform(0.5, 10.0)) for k, v in seq_sections.items()
    }
    seq_total = sum(seq_sections.values())
    s_model = modeled_speedup(seq_sections, par_sections)
    for label, t_par in par_sections.items():
        bound = partial_bound_from_total(seq_total, t_par * p, p)
        assert s_model <= bound * (1 + 1e-9)


@given(st.dictionaries(st.sampled_from("abcd"), pos_time, min_size=2),
       st.integers(min_value=2, max_value=64))
@settings(max_examples=40)
def test_binding_section_bound_is_minimum(sections, p):
    b = SpeedupBounder(100.0)
    entry = b.binding_section(p, sections)
    for label, total in sections.items():
        assert entry.bound <= b.bound(label, p, total).bound + 1e-12


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=2,
                max_size=12))
@settings(max_examples=80)
def test_inflexion_never_crashes_and_points_into_series(times):
    ps = list(range(1, len(times) + 1))
    pt = find_inflexion(ps, times, rel_tol=0.05)
    if pt is not None:
        assert pt.p in ps
        assert times[pt.index] == pt.time
        # the inflexion is within tolerance of the global minimum
        assert pt.time <= min(times) * 1.05 + 1e-12


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=3,
                max_size=10))
@settings(max_examples=60)
def test_inflexion_on_sorted_decreasing_is_none_or_plateau(times):
    dec = sorted(times, reverse=True)
    # strictly decreasing by >5% everywhere → no inflexion
    strict = all(b < a * 0.94 for a, b in zip(dec, dec[1:]))
    pt = find_inflexion(list(range(1, len(dec) + 1)), dec, rel_tol=0.05)
    if strict:
        assert pt is None
    elif pt is not None:
        assert not pt.exhausted or pt.index < len(dec) - 1
