"""Property-based tests: collectives equal their sequential references
for arbitrary payload shapes, roots, and communicator sizes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.reduce_ops import MAX, MIN, SUM

from tests.conftest import mpi

sizes = st.integers(min_value=1, max_value=9)
roots_and_sizes = sizes.flatmap(
    lambda p: st.tuples(st.just(p), st.integers(min_value=0, max_value=p - 1))
)
payload_shapes = st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                          max_size=3).map(tuple)

SETTINGS = dict(max_examples=25, deadline=None)


@given(roots_and_sizes, payload_shapes, st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_bcast_delivers_identical_array(ps, shape, data_seed):
    p, root = ps
    src = np.random.default_rng(data_seed).random(shape)

    def main(ctx):
        return ctx.comm.bcast(src if ctx.rank == root else None, root=root)

    res = mpi(p, main)
    for r in res.results:
        assert np.array_equal(r, src)


@given(roots_and_sizes, payload_shapes, st.sampled_from([SUM, MIN, MAX]),
       st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_reduce_matches_numpy_reference(ps, shape, op, data_seed):
    p, root = ps
    rng = np.random.default_rng(data_seed)
    contribs = [rng.integers(-100, 100, size=shape) for _ in range(p)]

    def main(ctx):
        return ctx.comm.reduce(contribs[ctx.rank], op=op, root=root)

    res = mpi(p, main)
    ref_fn = {SUM: np.sum, MIN: np.min, MAX: np.max}[op]
    expected = ref_fn(np.stack(contribs), axis=0)
    assert np.array_equal(res.results[root], expected)
    assert all(res.results[i] is None for i in range(p) if i != root)


@given(sizes, st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_allreduce_sum_float_matches_on_all_ranks(p, data_seed):
    vals = np.random.default_rng(data_seed).random(p)

    def main(ctx):
        return ctx.comm.allreduce(vals[ctx.rank], op=SUM)

    res = mpi(p, main)
    # All ranks agree bit-for-bit (bcast of a single combined value).
    assert len({r for r in res.results}) == 1
    assert abs(res.results[0] - vals.sum()) < 1e-9


@given(sizes)
@settings(**SETTINGS)
def test_allgather_equals_gather_plus_bcast(p):
    def main(ctx):
        ag = ctx.comm.allgather(ctx.rank * 3)
        g = ctx.comm.gather(ctx.rank * 3, root=0)
        g = ctx.comm.bcast(g, root=0)
        return (ag, g)

    res = mpi(p, main)
    for ag, g in res.results:
        assert ag == g == [3 * i for i in range(p)]


@given(sizes, st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_alltoall_is_transpose(p, data_seed):
    mat = np.random.default_rng(data_seed).integers(0, 1000, size=(p, p))

    def main(ctx):
        return ctx.comm.alltoall(list(mat[ctx.rank]))

    res = mpi(p, main)
    for j in range(p):
        assert res.results[j] == list(mat[:, j])


@given(sizes, st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_scan_matches_cumsum(p, data_seed):
    vals = np.random.default_rng(data_seed).integers(-50, 50, size=p)

    def main(ctx):
        return ctx.comm.scan(int(vals[ctx.rank]), op=SUM)

    res = mpi(p, main)
    assert res.results == list(np.cumsum(vals))


@given(sizes, st.integers(min_value=1, max_value=30), st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_scatterv_gatherv_roundtrip_arbitrary_counts(p, extra, data_seed):
    rng = np.random.default_rng(data_seed)
    counts = list(rng.integers(1, 1 + extra, size=p))
    rows = sum(counts)
    data = rng.random((rows, 2))

    def main(ctx):
        local = np.zeros((counts[ctx.rank], 2))
        ctx.comm.Scatterv(data if ctx.rank == 0 else None, counts, local, root=0)
        out = np.zeros((rows, 2)) if ctx.rank == 0 else None
        ctx.comm.Gatherv(local, out, counts, root=0)
        return out

    res = mpi(p, main)
    assert np.array_equal(res.results[0], data)
