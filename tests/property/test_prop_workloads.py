"""Property-based workload invariants over randomized configurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.catalog import knl_node, nehalem_cluster
from repro.workloads.convolution import (
    ConvolutionBenchmark,
    ConvolutionConfig,
    sequential_convolution,
)
from repro.workloads.images import make_image
from repro.workloads.lbm import LBMBenchmark, LBMConfig
from repro.workloads.lulesh import LuleshBenchmark, LuleshConfig

SMALL = dict(max_examples=6, deadline=None)


@given(
    st.integers(min_value=5, max_value=24),   # height
    st.integers(min_value=4, max_value=20),   # width
    st.integers(min_value=1, max_value=5),    # steps
    st.integers(min_value=1, max_value=5),    # ranks
    st.integers(min_value=0, max_value=10_000),
)
@settings(**SMALL)
def test_convolution_equals_sequential_for_any_config(h, w, steps, p, seed):
    if h < p:
        p = h  # at least one row per rank
    cfg = ConvolutionConfig(height=h, width=w, steps=steps, image_seed=seed)
    ref = sequential_convolution(
        make_image(h, w, cfg.channels, seed=seed), steps
    )
    res = ConvolutionBenchmark(cfg).run(
        p, machine=nehalem_cluster(nodes=1, jitter=0.0)
    )
    assert np.array_equal(res.rank_result(0), ref)


@given(
    st.integers(min_value=2, max_value=4),   # per-rank side at p=8
    st.integers(min_value=1, max_value=4),   # steps
    st.floats(min_value=1.0, max_value=5.0),  # spike energy
)
@settings(**SMALL)
def test_lulesh_invariance_and_conservation_random_configs(s8, steps, spike):
    common = dict(steps=steps, spike=spike, return_fields=True)
    r1 = LuleshBenchmark(LuleshConfig(s=2 * s8, **common)).run(
        1, machine=knl_node(jitter=0.0)
    )[1]
    r8 = LuleshBenchmark(LuleshConfig(s=s8, **common)).run(
        8, machine=knl_node(jitter=0.0)
    )[1]
    assert np.array_equal(r1.energy_field, r8.energy_field)
    assert r1.energy_drift < 1e-12
    assert r8.energy_drift < 1e-12


@given(
    st.integers(min_value=4, max_value=10),   # ny
    st.integers(min_value=4, max_value=10),   # nx
    st.integers(min_value=1, max_value=8),    # steps
    st.floats(min_value=0.55, max_value=1.8),  # tau
    st.integers(min_value=1, max_value=3),    # ranks
)
@settings(**SMALL)
def test_lbm_mass_conserved_for_any_config(ny, nx, steps, tau, p):
    if ny < p:
        p = ny
    cfg = LBMConfig(ny=ny, nx=nx, steps=steps, tau=tau)
    _, summary = LBMBenchmark(cfg).run(
        p, machine=nehalem_cluster(nodes=1, jitter=0.0)
    )
    assert summary["mass_drift"] < 1e-12
    assert np.isfinite(summary["f"]).all()
