"""Property-based point-to-point semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.api import ANY_SOURCE

from tests.conftest import mpi

SETTINGS = dict(max_examples=25, deadline=None)

json_objects = st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False)
    | st.text(max_size=8),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=4), children, max_size=4),
    max_leaves=10,
)


@given(json_objects)
@settings(**SETTINGS)
def test_object_roundtrip_preserves_value(obj):
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(obj, dest=1)
        else:
            return ctx.comm.recv(source=0)

    res = mpi(2, main)
    assert res.results[1] == obj


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=24))
@settings(**SETTINGS)
def test_fifo_per_source_tag_any_interleaving(tags):
    """Messages with equal (source, tag) arrive in send order regardless
    of how tags interleave."""

    def main(ctx):
        if ctx.rank == 0:
            for i, tag in enumerate(tags):
                ctx.comm.send((tag, i), dest=1, tag=tag)
        else:
            out = []
            for tag in sorted(set(tags)):
                n = tags.count(tag)
                out.append([ctx.comm.recv(source=0, tag=tag) for _ in range(n)])
            return out

    res = mpi(2, main)
    for group in res.results[1]:
        indices = [i for (_, i) in group]
        assert indices == sorted(indices)


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=1, max_value=6))
@settings(**SETTINGS)
def test_any_source_receives_every_message_exactly_once(p, per_rank):
    def main(ctx):
        if ctx.rank == 0:
            got = [ctx.comm.recv(source=ANY_SOURCE)
                   for _ in range((ctx.size - 1) * per_rank)]
            return sorted(got)
        for i in range(per_rank):
            ctx.comm.send((ctx.rank, i), dest=0)

    res = mpi(p, main)
    expected = sorted((r, i) for r in range(1, p) for i in range(per_rank))
    assert res.results[0] == expected


@given(st.integers(min_value=1, max_value=200_000), st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_buffer_roundtrip_any_size_crosses_protocols(n, data_seed):
    """Eager and rendezvous payloads both deliver exact bytes."""
    src = np.random.default_rng(data_seed).random(n)

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(src, dest=1)
        else:
            buf = np.empty(n)
            ctx.comm.Recv(buf, source=0)
            return buf

    res = mpi(2, main)
    assert np.array_equal(res.results[1], src)


@given(st.integers(min_value=2, max_value=7), st.integers(0, 2**31 - 1))
@settings(**SETTINGS)
def test_ring_rotation_conserves_multiset(p, data_seed):
    vals = list(np.random.default_rng(data_seed).integers(0, 100, size=p))

    def main(ctx):
        comm = ctx.comm
        cur = vals[ctx.rank]
        for _ in range(p):  # full rotation returns the original
            cur = comm.sendrecv(cur, dest=(comm.rank + 1) % p,
                                source=(comm.rank - 1) % p)
        return cur

    res = mpi(p, main)
    assert res.results == vals
