"""Property-based tests on loop chunking and partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.omp.parallel_for import chunk_ranges
from repro.workloads.stencil import row_partition

SETTINGS = dict(max_examples=100, deadline=None)


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=32),
       st.sampled_from(["static", "dynamic", "guided"]),
       st.one_of(st.none(), st.integers(min_value=1, max_value=16)))
@settings(**SETTINGS)
def test_chunks_partition_iteration_space(n, t, schedule, chunk):
    chunks = chunk_ranges(n, t, schedule, chunk)
    covered = []
    for tid, lo, hi in chunks:
        assert 0 <= lo < hi <= n
        assert 0 <= tid < t
        covered.extend(range(lo, hi))
    assert sorted(covered) == list(range(n))
    assert len(covered) == len(set(covered))  # no overlap


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=32))
@settings(**SETTINGS)
def test_static_default_is_balanced(n, t):
    chunks = chunk_ranges(n, t, "static")
    sizes = [hi - lo for _, lo, hi in chunks]
    assert max(sizes) - min(sizes) <= 1


@given(st.integers(min_value=1, max_value=10_000),
       st.integers(min_value=1, max_value=128))
@settings(**SETTINGS)
def test_row_partition_invariants(n, p):
    if n < p:
        return
    counts = row_partition(n, p)
    assert sum(counts) == n
    assert len(counts) == p
    assert max(counts) - min(counts) <= 1
    assert min(counts) >= 1
