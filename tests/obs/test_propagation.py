"""Trace-ID propagation across process boundaries.

The harness fans sweep points out to worker *processes*; a trace minted
in the parent must come back with the workers' spans stitched in under
the same trace ID.  The service test is the end-to-end version: one
``?trace=1`` job submitted through the HTTP surface, run with
``sweep_jobs=2``, must yield a single trace whose subprocess spans carry
the parent job's trace ID.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.harness.parallel import map_points, map_points_failsoft
from repro.service.api import ServiceApp
from tests.service.conftest import tiny_conv_spec


@pytest.fixture(autouse=True)
def _clean_thread_state():
    obs.install(None)
    yield
    obs.install(None)


def _traced_pid(task):
    with obs.span("point.pid", layer="test", task=task):
        return os.getpid()


def test_map_points_stitches_worker_spans_into_parent_trace():
    tracer = obs.start_trace("root", layer="test")
    pids = list(map_points(_traced_pid, list(range(6)), jobs=2))
    obs.finish_trace()
    assert len(set(pids) - {os.getpid()}) >= 1  # really ran out of process
    spans = tracer.spans()
    assert len({s.trace_id for s in spans}) == 1
    worker_spans = [s for s in spans if s.pid != os.getpid()]
    assert {s.name for s in worker_spans} >= {"worker.task", "point.pid"}
    # worker roots hang off the pool.map span's subtree, not off nothing
    parent_ids = {s.span_id for s in spans}
    assert all(s.parent_id in parent_ids or s.parent_id == tracer.root_id
               for s in worker_spans)


def test_map_points_failsoft_propagates_too():
    tracer = obs.start_trace("root", layer="test")
    outcomes = list(map_points_failsoft(_traced_pid, list(range(4)), jobs=2))
    obs.finish_trace()
    assert all(o.ok for o in outcomes)
    worker_spans = [s for s in tracer.spans() if s.pid != os.getpid()]
    assert any(s.name == "worker.task" for s in worker_spans)


def test_untraced_map_points_emits_nothing():
    pids = list(map_points(_traced_pid, list(range(4)), jobs=2))
    assert len(pids) == 4
    assert obs.current_tracer() is None


def test_service_job_trace_spans_processes(tmp_path):
    """Satellite: a ``--jobs 2`` service sweep yields ONE trace whose
    worker-subprocess spans carry the parent job's trace ID."""
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1, sweep_jobs=2)
    app.start()
    try:
        status, _, body = app.handle(
            "POST", "/api/v1/jobs", {"trace": "1"},
            json.dumps(tiny_conv_spec()).encode())
        assert status == 202
        job_id = json.loads(body)["job_id"]
        job = app.queue.get(job_id)
        assert job.want_trace
        assert job.done_event.wait(120)
        status, _, body = app.handle(
            "GET", f"/api/v1/jobs/{job_id}/trace")
        assert status == 200
        doc = json.loads(body)
        assert obs.validate_chrome_trace(doc) == []
        events = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        assert len({e["args"]["trace_id"] for e in events}) == 1
        assert len({e["pid"] for e in events}) >= 2  # parent + workers
        names = {e["name"] for e in events}
        assert {"job.run", "queue.wait", "job.execute", "pool.map",
                "worker.task", "point.simulate", "engine.run"} <= names
        # status summary advertises the trace without embedding it
        status, _, body = app.handle("GET", f"/api/v1/jobs/{job_id}")
        summary = json.loads(body)
        assert summary["has_trace"] is True
        assert "trace" not in summary
        # span durations surfaced as Prometheus summaries
        _, _, metrics = app.handle("GET", "/metrics")
        text = metrics.decode()
        assert 'repro_span_seconds_count{span="job.execute"}' in text
        assert 'repro_span_seconds{span="queue.wait",quantile="0.5"}' in text
    finally:
        app.close()


def test_untraced_service_job_has_no_trace(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1)
    app.start()
    try:
        status, _, body = app.handle(
            "POST", "/api/v1/jobs", {}, json.dumps(tiny_conv_spec()).encode())
        assert status == 202
        job_id = json.loads(body)["job_id"]
        job = app.queue.get(job_id)
        assert job.done_event.wait(120)
        status, _, body = app.handle("GET", f"/api/v1/jobs/{job_id}/trace")
        assert status == 404
        assert "trace=1" in json.loads(body)["error"]
        status, _, body = app.handle("GET", f"/api/v1/jobs/{job_id}")
        assert json.loads(body)["has_trace"] is False
    finally:
        app.close()
