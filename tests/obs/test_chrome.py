"""Chrome trace-event export, schema validation, and text reports."""

from __future__ import annotations

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_thread_state():
    obs.install(None)
    yield
    obs.install(None)


def _sample_tracer():
    tracer = obs.start_trace("root", layer="test", attrs={"run": "sample"})
    with obs.span("phase.one", layer="test", items=2):
        with obs.span("phase.one.inner", layer="test"):
            pass
        obs.event("milestone", layer="test")
    with obs.span("phase.two", layer="test"):
        pass
    return obs.finish_trace()


def test_export_is_schema_valid():
    doc = obs.to_chrome_trace(_sample_tracer())
    assert obs.validate_chrome_trace(doc) == []


def test_export_shape_and_units():
    tracer = _sample_tracer()
    doc = obs.to_chrome_trace(tracer)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["trace_id"] == tracer.trace_id
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in metas)
    assert any(e["name"] == "thread_name" for e in metas)
    completes = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in completes} >= {
        "root", "phase.one", "phase.one.inner", "phase.two"}
    assert [e["name"] for e in instants] == ["milestone"]
    for e in completes:
        assert isinstance(e["ts"], (int, float))
        assert e["dur"] >= 0
        assert e["args"]["trace_id"] == tracer.trace_id
    # timestamps are microseconds relative to the trace start: the root
    # span starts at (or very near) zero
    root = next(e for e in completes if e["name"] == "root")
    assert root["ts"] < 1e6


def test_export_roundtrips_through_json(tmp_path):
    path = tmp_path / "trace.json"
    obs.write_chrome_trace(_sample_tracer(), str(path))
    doc = json.loads(path.read_text())
    assert obs.validate_chrome_trace(doc) == []


def test_validator_flags_problems():
    assert obs.validate_chrome_trace({"nope": 1})
    assert obs.validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
    missing_dur = {"traceEvents": [
        {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0.0, "args": {}}]}
    assert any("dur" in p for p in obs.validate_chrome_trace(missing_dur))
    ok = {"traceEvents": [
        {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0.0,
         "dur": 1.0, "args": {}}]}
    assert obs.validate_chrome_trace(ok) == []


def test_span_tree_rendering():
    text = obs.render_span_tree(_sample_tracer())
    lines = text.splitlines()
    root_line = next(line for line in lines if "test:root" in line)
    inner_line = next(line for line in lines if "phase.one.inner" in line)
    # children indent deeper than the root, durations render in ms
    assert inner_line.index("test:") > root_line.index("test:")
    assert "ms" in root_line and "[run=sample]" in root_line
    assert any("milestone" in line and "·" in line for line in lines)


def test_self_profile_lists_hot_spans():
    text = obs.self_profile(_sample_tracer())
    assert "phase.one" in text
    assert "ms" in text or "%" in text
