"""Tracing must never perturb simulated results.

Span IDs come from ``os.urandom`` and span timestamps from the wall
clock — neither touches the seeded numpy RNG streams — so every
virtual-time number must be bit-identical with tracing on and off.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig


@pytest.fixture(autouse=True)
def _clean_thread_state():
    obs.install(None)
    yield
    obs.install(None)


def _sweep():
    return ConvolutionSweep(
        config=ConvolutionConfig(height=64, width=96, steps=5),
        machine=nehalem_cluster(nodes=2),
        process_counts=(1, 2, 4),
        reps=2,
        base_seed=7,
    )


def _times(profile):
    return {p: [r.walltime for r in profile.runs(p)]
            for p in profile.scales()}


def test_virtual_times_bit_identical_with_tracing():
    baseline = run_convolution_sweep(_sweep())
    obs.start_trace("traced-run", layer="test")
    traced = run_convolution_sweep(_sweep())
    tracer = obs.finish_trace()
    assert _times(traced) == _times(baseline)
    assert any(s.name == "point.simulate" for s in tracer.spans())


def test_virtual_times_bit_identical_across_worker_fanout():
    baseline = run_convolution_sweep(_sweep(), jobs=2)
    obs.start_trace("traced-run", layer="test")
    traced = run_convolution_sweep(_sweep(), jobs=2)
    obs.finish_trace()
    assert _times(traced) == _times(baseline)
