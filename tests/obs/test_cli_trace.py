"""The headline acceptance test: ``repro fig5a --trace out.json``.

Runs the CLI in a subprocess and checks the written file is a
schema-valid Chrome trace carrying spans from every layer — CLI,
harness, cache, engine — under a single trace ID.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _run_cli(*argv, env_extra=None, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_CACHE_DIR", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, cwd=cwd, timeout=600,
    )


def test_cli_trace_flag_writes_valid_chrome_trace(tmp_path):
    from repro.obs import validate_chrome_trace

    out = tmp_path / "trace.json"
    proc = _run_cli(
        "fig5a", "--reps", "1", "--steps", "10", "--jobs", "2",
        "--quiet", "--out", str(tmp_path / "results"),
        "--trace", str(out),
    )
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
    events = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
    layers = {e["args"]["layer"] for e in events}
    assert {"cli", "harness", "cache", "engine"} <= layers
    assert len({e["args"]["trace_id"] for e in events}) == 1
    # the fan-out really crossed process boundaries
    assert len({e["pid"] for e in events}) >= 2
    # self-profile printed to stderr alongside the file
    assert "self-profile" in proc.stderr or "chrome trace written" in proc.stdout


def test_cli_env_var_traces_without_flag(tmp_path):
    out = tmp_path / "env-trace.json"
    proc = _run_cli(
        "fig5a", "--reps", "1", "--steps", "10", "--quiet",
        "--out", str(tmp_path / "results"),
        env_extra={"REPRO_TRACE": str(out)},
    )
    assert proc.returncode == 0, proc.stderr
    from repro.obs import validate_chrome_trace

    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []


def test_cli_untraced_run_prints_no_trace_output(tmp_path):
    proc = _run_cli(
        "fig5a", "--reps", "1", "--steps", "10", "--quiet",
        "--out", str(tmp_path / "results"),
    )
    assert proc.returncode == 0, proc.stderr
    assert "trace" not in proc.stdout.lower()
    assert "self-profile" not in proc.stderr
