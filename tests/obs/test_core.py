"""Unit tests for the obs core: tracers, spans, the ambient stack."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs.core import Span, Tracer, _NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_thread_state():
    """Every test starts and ends with no ambient tracer on this thread."""
    obs.install(None)
    yield
    obs.install(None)


def test_disabled_span_is_shared_null_object():
    assert not obs.enabled()
    sp = obs.span("anything", layer="test")
    assert sp is _NULL_SPAN
    with sp as inner:
        inner.set(key="value")  # must be a silent no-op
    obs.event("nothing-happens")  # and so must events


def test_span_nesting_builds_parent_chain():
    tracer = obs.start_trace("root", layer="test")
    with obs.span("outer", layer="test") as outer:
        with obs.span("inner", layer="test") as inner:
            assert inner.span_id != outer.span_id
    finished = obs.finish_trace()
    assert finished is tracer
    by_name = {s.name: s for s in tracer.spans()}
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["outer"].parent_id == tracer.root_id
    assert by_name["root"].parent_id is None
    assert len({s.trace_id for s in tracer.spans()}) == 1


def test_events_are_zero_duration_instants():
    tracer = obs.start_trace("root", layer="test")
    with obs.span("work", layer="test") as work:
        obs.event("tick", layer="test", n=3)
    obs.finish_trace()
    ev = next(s for s in tracer.spans() if s.kind == "event")
    assert ev.name == "tick"
    assert ev.duration == 0.0
    assert ev.parent_id == work.span_id
    assert ev.attrs["n"] == 3


def test_span_set_and_error_attrs():
    tracer = obs.start_trace("root", layer="test")
    with pytest.raises(ValueError):
        with obs.span("doomed", layer="test") as sp:
            sp.set(points=7)
            raise ValueError("boom")
    obs.finish_trace()
    doomed = next(s for s in tracer.spans() if s.name == "doomed")
    assert doomed.attrs["points"] == 7
    assert doomed.attrs["error"] == "ValueError"


def test_start_trace_twice_on_one_thread_raises():
    obs.start_trace("first", layer="test")
    with pytest.raises(RuntimeError):
        obs.start_trace("second", layer="test")
    obs.finish_trace()


def test_finish_trace_without_start_returns_none():
    assert obs.finish_trace() is None


def test_ring_buffer_drops_oldest_and_counts():
    tracer = Tracer("root", layer="test", limit=4)
    obs.install(tracer)
    for i in range(10):
        with obs.span(f"s{i}", layer="test"):
            pass
    obs.install(None)
    tracer.finish()
    names = [s.name for s in tracer.spans()]
    # the root span is emitted by finish() and always survives
    assert "root" in names
    assert tracer.dropped > 0
    root = next(s for s in tracer.spans() if s.name == "root")
    # the counter in the root attrs is snapshotted before the root span
    # itself lands in the (full) ring, so it may trail by one
    assert 0 < root.attrs["spans_dropped"] <= tracer.dropped


def test_install_with_base_reparents_new_spans():
    tracer = Tracer("root", layer="test")
    obs.install(tracer, base="feedbeefcafe0001")
    with obs.span("child", layer="test"):
        pass
    obs.install(None)
    child = next(s for s in tracer.spans() if s.name == "child")
    assert child.parent_id == "feedbeefcafe0001"


def test_record_externally_timed_span():
    tracer = obs.start_trace("root", layer="test")
    tracer.record("queue.wait", layer="test", start=tracer._wall0 - 1.0,
                  duration=1.0, attrs={"q": 1})
    obs.finish_trace()
    rec = next(s for s in tracer.spans() if s.name == "queue.wait")
    assert rec.duration == 1.0
    assert rec.parent_id == tracer.root_id
    assert rec.pid == os.getpid()


def test_span_roundtrips_through_dict():
    sp = Span(trace_id="t" * 32, span_id="s" * 16, parent_id=None,
              name="x", layer="test", start=1.5, duration=0.25,
              pid=123, thread="T", attrs={"a": 1}, kind="span")
    assert Span.from_dict(sp.to_dict()) == sp


def test_ids_are_hex_and_unique():
    trace_ids = {obs.new_trace_id() for _ in range(64)}
    span_ids = {obs.new_span_id() for _ in range(64)}
    assert len(trace_ids) == 64 and len(span_ids) == 64
    assert all(len(t) == 32 and int(t, 16) >= 0 for t in trace_ids)
    assert all(len(s) == 16 and int(s, 16) >= 0 for s in span_ids)


def test_env_trace_noop_when_unset(monkeypatch):
    monkeypatch.delenv(obs.TRACE_ENV, raising=False)
    with obs.env_trace("outer", layer="test"):
        assert not obs.enabled()


def test_env_trace_activates_and_cleans_up(monkeypatch, capsys):
    monkeypatch.setenv(obs.TRACE_ENV, "1")
    with obs.env_trace("outer", layer="test"):
        assert obs.enabled()
        with obs.span("inner", layer="test"):
            pass
    assert not obs.enabled()
    err = capsys.readouterr().err
    assert "inner" in err  # self-profile printed to stderr


def test_env_trace_nested_does_not_restart(monkeypatch):
    monkeypatch.setenv(obs.TRACE_ENV, "1")
    with obs.env_trace("outer", layer="test"):
        tracer = obs.current_tracer()
        with obs.env_trace("nested", layer="test"):
            assert obs.current_tracer() is tracer


def test_env_trace_writes_chrome_file(monkeypatch, tmp_path, capsys):
    out = tmp_path / "trace.json"
    monkeypatch.setenv(obs.TRACE_ENV, str(out))
    with obs.env_trace("outer", layer="test"):
        with obs.span("inner", layer="test"):
            pass
    capsys.readouterr()
    assert out.exists()
    doc = __import__("json").loads(out.read_text())
    assert obs.validate_chrome_trace(doc) == []
