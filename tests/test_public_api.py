"""Public-surface hygiene: exports resolve, every public item is documented.

This is the documentation gate for deliverable (e): every public module,
class, function and method in the package must carry a docstring, and
every name exported through ``__all__`` must resolve.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.harness",
    "repro.machine",
    "repro.omp",
    "repro.scenarios",
    "repro.simmpi",
    "repro.tools",
    "repro.workloads",
    "repro.workloads.zoo",
]


def _all_modules():
    out = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            out.append(importlib.import_module(info.name))
    return out


MODULES = _all_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("pkg_name", PACKAGES)
def test_dunder_all_resolves(pkg_name):
    pkg = importlib.import_module(pkg_name)
    for name in getattr(pkg, "__all__", []):
        assert hasattr(pkg, name), f"{pkg_name}.__all__ exports missing {name}"


def _public_members():
    seen = set()
    for module in MODULES:
        if not module.__name__.startswith("repro"):
            continue
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").startswith("repro") is False:
                continue
            key = (obj.__module__, getattr(obj, "__qualname__", name))
            if key in seen:
                continue
            seen.add(key)
            yield key, obj


PUBLIC = sorted(_public_members(), key=lambda kv: kv[0])


@pytest.mark.parametrize(
    "obj", [o for _, o in PUBLIC], ids=[f"{m}.{q}" for (m, q), _ in PUBLIC]
)
def test_public_item_documented(obj):
    assert obj.__doc__ and obj.__doc__.strip(), (
        f"{obj.__module__}.{obj.__qualname__} lacks a docstring"
    )


@pytest.mark.parametrize(
    "obj", [o for _, o in PUBLIC if inspect.isclass(o)],
    ids=[f"{m}.{q}" for (m, q), o in PUBLIC if inspect.isclass(o)],
)
def test_public_methods_documented(obj):
    undocumented = []
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) and not (
            member.__doc__ and member.__doc__.strip()
        ):
            undocumented.append(name)
    assert not undocumented, (
        f"{obj.__module__}.{obj.__qualname__} has undocumented public "
        f"methods: {undocumented}"
    )


def test_version_matches_pyproject():
    import pathlib
    import re

    text = pathlib.Path(repro.__file__).parents[2].joinpath(
        "pyproject.toml"
    ).read_text()
    declared = re.search(r'^version = "(.*)"', text, re.M).group(1)
    assert repro.__version__ == declared
