"""FaultPlan construction, validation, serialisation, and cache keying."""

import pytest

from repro.faults import (
    DegradedLink,
    FaultPlan,
    FaultPlanError,
    NoiseBurst,
    RankCrash,
    RankHang,
    StragglerRank,
)
from repro.harness.cache import run_key


def _plan():
    return FaultPlan(
        faults=(
            StragglerRank(rank=0, factor=2.0),
            NoiseBurst(rank=1, mean_delay=0.01, prob=0.5, t_start=1.0, t_end=2.0),
            DegradedLink(src=0, dst=1, latency_factor=3.0, bandwidth_factor=0.5),
            RankHang(rank=2, at_time=5.0),
            RankCrash(rank=3, at_time=7.0),
        ),
        seed=42,
    )


# -- construction & typed views ---------------------------------------------


def test_typed_views_preserve_plan_order():
    plan = _plan()
    assert [f.kind for f in plan.faults] == [
        "straggler", "noise_burst", "degraded_link", "hang", "crash",
    ]
    assert plan.stragglers[0].factor == 2.0
    assert plan.noise_bursts[0].prob == 0.5
    assert plan.degraded_links[0].latency_factor == 3.0
    assert plan.hangs[0].at_time == 5.0
    assert plan.crashes[0].rank == 3


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert _plan()


def test_straggler_window_membership():
    f = StragglerRank(rank=0, factor=2.0, t_start=1.0, t_end=3.0)
    assert not f.active(0.5)
    assert f.active(1.0)
    assert f.active(2.999)
    assert not f.active(3.0)
    open_ended = StragglerRank(rank=0, factor=2.0, t_start=1.0)
    assert open_ended.active(1e9)


# -- validation --------------------------------------------------------------


@pytest.mark.parametrize(
    "build",
    [
        lambda: StragglerRank(rank=-1, factor=2.0),
        lambda: StragglerRank(rank=0, factor=0.0),
        lambda: StragglerRank(rank=0, factor=2.0, t_start=2.0, t_end=1.0),
        lambda: StragglerRank(rank=0, factor=2.0, t_start=-1.0),
        lambda: NoiseBurst(rank=0, mean_delay=0.0),
        lambda: NoiseBurst(rank=0, mean_delay=0.1, prob=0.0),
        lambda: NoiseBurst(rank=0, mean_delay=0.1, prob=1.5),
        lambda: DegradedLink(src=-1, dst=0),
        lambda: DegradedLink(src=0, dst=1, latency_factor=0.0),
        lambda: DegradedLink(src=0, dst=1, bandwidth_factor=-0.5),
        lambda: RankHang(rank=-2),
        lambda: RankCrash(rank=0, at_time=-1.0),
    ],
)
def test_invalid_events_rejected(build):
    with pytest.raises(FaultPlanError):
        build()


def test_plan_rejects_foreign_objects():
    with pytest.raises(FaultPlanError):
        FaultPlan(faults=("not a fault",))


# -- (de)serialisation -------------------------------------------------------


def test_json_roundtrip_is_lossless():
    plan = _plan()
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.from_json(plan.to_json(indent=2)) == plan


def test_load_reads_a_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(_plan().to_json())
    assert FaultPlan.load(path) == _plan()


def test_load_missing_file_is_plan_error(tmp_path):
    with pytest.raises(FaultPlanError, match="cannot read"):
        FaultPlan.load(tmp_path / "nope.json")


def test_from_json_rejects_bad_json():
    with pytest.raises(FaultPlanError, match="not valid JSON"):
        FaultPlan.from_json("{not json")


@pytest.mark.parametrize(
    "data, match",
    [
        ([], "must be an object"),
        ({"faults": [{"rank": 0}]}, "needs a 'kind'"),
        ({"faults": [{"kind": "meteor", "rank": 0}]}, "unknown kind"),
        ({"faults": [{"kind": "straggler", "rank": 0, "factor": 2.0,
                      "speed": 9}]}, "unknown fields"),
        ({"faults": [{"kind": "straggler"}]}, "straggler"),
    ],
)
def test_from_dict_rejects_malformed_plans(data, match):
    with pytest.raises(FaultPlanError, match=match):
        FaultPlan.from_dict(data)


def test_from_dict_validates_field_values():
    with pytest.raises(FaultPlanError, match="factor"):
        FaultPlan.from_dict(
            {"faults": [{"kind": "straggler", "rank": 0, "factor": -1.0}]}
        )


# -- cache keying ------------------------------------------------------------


def test_equal_plans_key_equal():
    assert run_key(p=2, faults=_plan()) == run_key(p=2, faults=_plan())


def test_changed_fault_changes_key():
    a = FaultPlan((StragglerRank(rank=0, factor=2.0),))
    b = FaultPlan((StragglerRank(rank=0, factor=3.0),))
    assert run_key(p=2, faults=a) != run_key(p=2, faults=b)


def test_reordered_plan_is_a_different_key():
    """Plan order defines each fault's RNG stream index, so it must key."""
    burst = NoiseBurst(rank=0, mean_delay=0.1)
    strag = StragglerRank(rank=1, factor=2.0)
    assert run_key(faults=FaultPlan((burst, strag), seed=1)) != run_key(
        faults=FaultPlan((strag, burst), seed=1)
    )


def test_plan_seed_changes_key():
    plan = (NoiseBurst(rank=0, mean_delay=0.1),)
    assert run_key(faults=FaultPlan(plan, seed=1)) != run_key(
        faults=FaultPlan(plan, seed=2)
    )
