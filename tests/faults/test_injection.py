"""Fault injection through the engine: behaviour and bit-reproducibility."""

import pytest

from repro.core.export import profile_to_json
from repro.core.profile import SectionProfile
from repro.errors import (
    InjectedFaultError,
    RankFailedError,
    SimulationStalledError,
)
from repro.faults import (
    DegradedLink,
    FaultPlan,
    FaultRuntime,
    NoiseBurst,
    RankCrash,
    RankHang,
    StragglerRank,
)
from repro.machine.catalog import laptop, nehalem_cluster
from repro.simmpi.engine import run_mpi

from tests.conftest import mpi


def _compute_main(ctx):
    ctx.compute(seconds=0.1)
    return ctx.now


# -- stragglers --------------------------------------------------------------


def test_straggler_multiplies_compute_time():
    plan = FaultPlan((StragglerRank(rank=0, factor=2.0),))
    res = mpi(2, _compute_main, faults=plan)
    assert res.results[0] == pytest.approx(0.2)
    assert res.results[1] == pytest.approx(0.1)


def test_straggler_window_limits_slowdown():
    def main(ctx):
        ctx.compute(seconds=0.1)  # starts at t=0: outside [1, 2)
        return ctx.now

    plan = FaultPlan((StragglerRank(rank=0, factor=5.0, t_start=1.0, t_end=2.0),))
    res = mpi(1, main, faults=plan)
    assert res.results[0] == pytest.approx(0.1)


def test_stacked_stragglers_compound():
    plan = FaultPlan(
        (StragglerRank(rank=0, factor=2.0), StragglerRank(rank=0, factor=3.0))
    )
    res = mpi(1, _compute_main, faults=plan)
    assert res.results[0] == pytest.approx(0.6)


# -- noise bursts ------------------------------------------------------------


def test_noise_burst_adds_delay():
    plan = FaultPlan((NoiseBurst(rank=0, mean_delay=0.05),), seed=3)
    clean = mpi(1, _compute_main)
    noisy = mpi(1, _compute_main, faults=plan)
    assert noisy.results[0] > clean.results[0]


def test_noise_burst_respects_window():
    plan = FaultPlan(
        (NoiseBurst(rank=0, mean_delay=10.0, t_start=50.0),), seed=3
    )
    res = mpi(1, _compute_main, faults=plan)
    assert res.results[0] == pytest.approx(0.1)


# -- degraded links ----------------------------------------------------------


def test_degraded_link_slows_delivery():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 10_000, dest=1)
        else:
            ctx.comm.recv(source=0)
        return ctx.now

    plan = FaultPlan(
        (DegradedLink(src=0, dst=1, latency_factor=10.0,
                      bandwidth_factor=0.1),)
    )
    clean = mpi(2, main)
    slow = mpi(2, main, faults=plan)
    assert slow.results[1] > clean.results[1]


def test_degraded_link_is_directional():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 10_000, dest=1)
        else:
            ctx.comm.recv(source=0)
        return ctx.now

    # Degrading the reverse channel leaves the 0 → 1 transfer untouched.
    plan = FaultPlan((DegradedLink(src=1, dst=0, latency_factor=100.0),))
    clean = mpi(2, main)
    same = mpi(2, main, faults=plan)
    assert same.results[1] == pytest.approx(clean.results[1])


def test_node_link_degrades_cross_node_traffic():
    mach = nehalem_cluster(nodes=2, jitter=0.0)

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"y" * 10_000, dest=ctx.size - 1)
        elif ctx.rank == ctx.size - 1:
            ctx.comm.recv(source=0)
        return ctx.now

    plan = FaultPlan(
        (DegradedLink(src=0, dst=1, latency_factor=10.0,
                      bandwidth_factor=0.1, nodes=True),)
    )
    clean = run_mpi(16, main, machine=mach)
    slow = run_mpi(16, main, machine=mach, faults=plan)
    assert slow.results[-1] > clean.results[-1]


# -- crashes and hangs -------------------------------------------------------


def test_crash_surfaces_as_rank_failure():
    plan = FaultPlan((RankCrash(rank=1, at_time=0.05),))

    def main(ctx):
        for _ in range(10):
            ctx.compute(seconds=0.02)

    with pytest.raises(RankFailedError) as ei:
        mpi(2, main, faults=plan)
    assert ei.value.rank == 1
    assert isinstance(ei.value.original, InjectedFaultError)


def test_hang_stalls_the_run_with_diagnostics():
    plan = FaultPlan((RankHang(rank=1, at_time=0.05),))

    def main(ctx):
        for _ in range(10):
            ctx.compute(seconds=0.02)
        ctx.comm.barrier()

    with pytest.raises(SimulationStalledError) as ei:
        mpi(2, main, faults=plan)
    assert 1 in ei.value.waiting_ranks()
    assert ei.value.partial_profile is not None


def test_out_of_range_faults_are_inert():
    plan = FaultPlan(
        (RankCrash(rank=5), RankHang(rank=9),
         StragglerRank(rank=7, factor=4.0),
         DegradedLink(src=5, dst=6, latency_factor=9.0))
    )
    res = mpi(2, _compute_main, faults=plan)
    assert res.results == [pytest.approx(0.1)] * 2


# -- reproducibility ---------------------------------------------------------


def _jittery_main(ctx):
    for _ in range(5):
        ctx.compute(flops=1e7)
        ctx.comm.allreduce(ctx.rank)
    return ctx.now


_FULL_PLAN = FaultPlan(
    (
        StragglerRank(rank=0, factor=1.7),
        NoiseBurst(rank=1, mean_delay=1e-4, prob=0.8),
        DegradedLink(src=0, dst=1, latency_factor=2.0),
    ),
    seed=11,
)


def test_same_plan_and_seed_byte_identical_exports():
    mach = nehalem_cluster(nodes=2, jitter=0.1)

    def once():
        res = run_mpi(8, _jittery_main, machine=mach, seed=5,
                      compute_jitter=0.05, faults=_FULL_PLAN)
        return profile_to_json(SectionProfile.from_run(res)), res.clocks

    (json_a, clocks_a), (json_b, clocks_b) = once(), once()
    assert json_a == json_b
    assert clocks_a == clocks_b


def test_fault_streams_do_not_perturb_engine_streams():
    """A unit-factor straggler is active yet must not consume any of the
    engine's jitter RNG draws: clocks match the fault-free run exactly."""
    mach = nehalem_cluster(nodes=2, jitter=0.1)
    neutral = FaultPlan((StragglerRank(rank=0, factor=1.0),), seed=99)
    base = run_mpi(8, _jittery_main, machine=mach, seed=5, compute_jitter=0.05)
    faulty = run_mpi(8, _jittery_main, machine=mach, seed=5,
                     compute_jitter=0.05, faults=neutral)
    assert faulty.clocks == base.clocks


def test_fault_draws_independent_of_engine_seed():
    """The burst's spike sequence is rooted in the plan seed alone."""
    plan = FaultPlan((NoiseBurst(rank=0, mean_delay=0.01),), seed=7)
    quiet_mach = laptop(cores=2)

    def delays(engine_seed):
        clean = run_mpi(1, _compute_main, machine=quiet_mach,
                        seed=engine_seed).results[0]
        noisy = run_mpi(1, _compute_main, machine=quiet_mach,
                        seed=engine_seed, faults=plan).results[0]
        return noisy - clean

    assert delays(1) == pytest.approx(delays(2), abs=0.0)


def test_appending_a_fault_keeps_earlier_streams():
    """Fault RNG streams are indexed by plan position, so appending new
    faults never changes the draws of the ones already there."""
    burst = NoiseBurst(rank=0, mean_delay=0.01)
    short = FaultRuntime(FaultPlan((burst,), seed=7), n_ranks=1)
    extended = FaultRuntime(
        FaultPlan((burst, StragglerRank(rank=0, factor=2.0)), seed=7),
        n_ranks=1,
    )
    a = [short.noise_delay(0, 0.0) for _ in range(20)]
    b = [extended.noise_delay(0, 0.0) for _ in range(20)]
    assert a == b
