"""The convolution benchmark: correctness, sections, configuration."""

import numpy as np
import pytest

from repro.core.profile import SectionProfile
from repro.errors import ReproError
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import (
    SECTIONS,
    ConvolutionBenchmark,
    ConvolutionConfig,
    sequential_convolution,
)
from repro.workloads.images import image_checksum, make_image


@pytest.fixture(scope="module")
def tiny_cfg():
    return ConvolutionConfig.tiny(steps=4)


@pytest.fixture(scope="module")
def reference(tiny_cfg):
    img = make_image(tiny_cfg.height, tiny_cfg.width, tiny_cfg.channels,
                     seed=tiny_cfg.image_seed)
    return sequential_convolution(img, tiny_cfg.steps)


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_parallel_matches_sequential_bitwise(tiny_cfg, reference, p):
    bench = ConvolutionBenchmark(tiny_cfg)
    res = bench.run(p, machine=nehalem_cluster(nodes=2, jitter=0.0), seed=1)
    assert image_checksum(res.rank_result(0)) == image_checksum(reference)


def test_nonroot_ranks_return_none(tiny_cfg):
    bench = ConvolutionBenchmark(tiny_cfg)
    res = bench.run(3, machine=nehalem_cluster(nodes=1, jitter=0.0))
    assert res.rank_result(1) is None and res.rank_result(2) is None


def test_all_paper_sections_present(tiny_cfg):
    bench = ConvolutionBenchmark(tiny_cfg)
    res = bench.run(2, machine=nehalem_cluster(nodes=1, jitter=0.0))
    prof = SectionProfile.from_run(res)
    for label in SECTIONS:
        assert label in prof.labels(), label


def test_section_counts_match_steps(tiny_cfg):
    bench = ConvolutionBenchmark(tiny_cfg)
    res = bench.run(2, machine=nehalem_cluster(nodes=1, jitter=0.0))
    prof = SectionProfile.from_run(res)
    assert prof.count("CONVOLVE") == 2 * tiny_cfg.steps
    assert prof.count("HALO") == 2 * tiny_cfg.steps
    assert prof.count("LOAD") == 2


def test_output_stored_in_storage(tiny_cfg):
    from repro.simmpi.mio import ModeledStorage
    from repro.simmpi.engine import run_mpi

    bench = ConvolutionBenchmark(tiny_cfg)
    storage = ModeledStorage()
    storage._data[bench.INPUT_KEY] = make_image(
        tiny_cfg.height, tiny_cfg.width, tiny_cfg.channels, seed=tiny_cfg.image_seed
    )
    run_mpi(2, bench.main, machine=nehalem_cluster(nodes=1, jitter=0.0),
            args=(storage,))
    assert storage.exists(bench.OUTPUT_KEY)


def test_compute_dominates_sequentially(tiny_cfg):
    bench = ConvolutionBenchmark(ConvolutionConfig(height=64, width=96, steps=20))
    res = bench.run(1, machine=nehalem_cluster(nodes=1, jitter=0.0))
    prof = SectionProfile.from_run(res)
    assert prof.percent_of_execution("CONVOLVE") > 50.0


def test_speedup_with_more_ranks():
    cfg = ConvolutionConfig(height=128, width=128, steps=20)
    bench = ConvolutionBenchmark(cfg)
    mach = nehalem_cluster(nodes=1, jitter=0.0)
    t1 = bench.run(1, machine=mach, compute_jitter=0.0).walltime
    t8 = bench.run(8, machine=mach, compute_jitter=0.0).walltime
    assert t8 < t1 / 2


def test_config_validation():
    with pytest.raises(ReproError):
        ConvolutionConfig(steps=0)
    with pytest.raises(ReproError):
        ConvolutionConfig(height=2)


def test_paper_size_configuration():
    cfg = ConvolutionConfig.paper_size()
    assert (cfg.height, cfg.width) == (3744, 5616)
    assert cfg.steps == 1000
    assert cfg.nbytes == 3744 * 5616 * 3 * 8


def test_sequential_reference_validates_shape():
    with pytest.raises(ReproError):
        sequential_convolution(np.zeros((4, 4)), 1)


def test_run_is_deterministic(tiny_cfg):
    bench = ConvolutionBenchmark(tiny_cfg)
    mach = nehalem_cluster(nodes=1)
    r1 = bench.run(4, machine=mach, seed=9)
    r2 = bench.run(4, machine=mach, seed=9)
    assert r1.clocks == r2.clocks


# -- communication/computation overlap -------------------------------------------

def test_overlap_matches_sequential_bitwise(tiny_cfg, reference):
    from dataclasses import replace

    cfg = replace(tiny_cfg, overlap_halo=True)
    res = ConvolutionBenchmark(cfg).run(
        4, machine=nehalem_cluster(nodes=2, jitter=0.0), seed=1
    )
    assert image_checksum(res.rank_result(0)) == image_checksum(reference)


def test_overlap_adds_wait_section(tiny_cfg):
    from dataclasses import replace
    from repro.core.profile import SectionProfile

    cfg = replace(tiny_cfg, overlap_halo=True)
    res = ConvolutionBenchmark(cfg).run(
        3, machine=nehalem_cluster(nodes=1, jitter=0.0)
    )
    prof = SectionProfile.from_run(res)
    assert "HALO_WAIT" in prof.labels()
    # two CONVOLVE instances per step (interior + boundary)
    assert prof.count("CONVOLVE") == 2 * 3 * tiny_cfg.steps


def test_overlap_hides_communication_time():
    """With enough interior work per step, the overlapped variant's
    walltime beats the blocking one (the wire time hides behind the
    interior filter)."""
    from dataclasses import replace

    base = ConvolutionConfig(height=192, width=512, steps=40)
    mach = nehalem_cluster(nodes=2, jitter=0.0)
    t_block = ConvolutionBenchmark(base).run(
        16, machine=mach, compute_jitter=0.0
    ).walltime
    t_overlap = ConvolutionBenchmark(replace(base, overlap_halo=True)).run(
        16, machine=mach, compute_jitter=0.0
    ).walltime
    assert t_overlap < t_block


def test_overlap_falls_back_when_slabs_too_thin():
    """With fewer than 3 rows per rank the uniform decision must fall
    back to the blocking path on every rank (no HALO_WAIT sections)."""
    from dataclasses import replace
    from repro.core.profile import SectionProfile

    cfg = replace(ConvolutionConfig.tiny(steps=2), overlap_halo=True)
    # 48 rows over 20 ranks → min rows = 2 < 3
    res = ConvolutionBenchmark(cfg).run(
        20, machine=nehalem_cluster(nodes=3, jitter=0.0)
    )
    prof = SectionProfile.from_run(res)
    assert "HALO_WAIT" not in prof.labels()
