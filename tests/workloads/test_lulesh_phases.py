"""LULESH proxy kernels: state, invariants, chunk independence."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.machine.roofline import WorkEstimate
from repro.workloads import lulesh_phases as ph


@pytest.fixture
def state():
    return ph.HydroState.initial(6, coords=(0, 0, 0), spike=3.0)


def test_initial_state_shapes(state):
    assert state.e.shape == (8, 8, 8)
    assert state.pos.shape == (3, 6, 6, 6)
    assert state.e_incr.shape == (6, 6, 6)


def test_initial_spike_only_at_origin_owner():
    with_spike = ph.HydroState.initial(4, coords=(0, 0, 0))
    without = ph.HydroState.initial(4, coords=(1, 0, 0))
    assert with_spike.e.max() == pytest.approx(3.0)
    assert without.e.max() == pytest.approx(0.1)


def test_total_energy_counts_interior_only(state):
    assert state.total_energy() == pytest.approx(0.1 * 6**3 + (3.0 - 0.1))


def test_state_validation():
    with pytest.raises(ReproError):
        ph.HydroState.initial(1)


def test_work_for_scales(state):
    w = ph.work_for("EvalEOSForElems", 100, scale=2.0)
    base = ph.WORK["EvalEOSForElems"]
    assert w.flops == pytest.approx(base.flops * 200)
    assert w.serial_fraction == base.serial_fraction


def test_work_for_unknown_kernel():
    with pytest.raises(ReproError):
        ph.work_for("NotAKernel", 10)


def test_work_table_phase_character():
    """Nodal kernels are memory-heavy; the EOS is compute-heavy."""
    eos = ph.WORK["EvalEOSForElems"]
    stress = ph.WORK["IntegrateStressForElems"]
    assert eos.flops / eos.bytes_moved > 4 * (stress.flops / stress.bytes_moved)


def test_gradient_of_uniform_field_is_zero(state):
    state.e[:] = 0.5
    ph.integrate_stress(state, 0, state.s)
    for g in (state.gx, state.gy, state.gz):
        assert np.all(state.interior(g) == 0.0)


def test_gradient_sees_spike(state):
    ph.integrate_stress(state, 0, state.s)
    assert np.abs(state.interior(state.gx)).max() > 0


def test_chunked_execution_equals_full_sweep():
    """Running a kernel in z-slabs gives the same result as one sweep —
    the property that makes OMP chunking numerically transparent."""
    a = ph.HydroState.initial(6)
    b = ph.HydroState.initial(6)
    rng = np.random.default_rng(0)
    noise = rng.random(a.e.shape)
    a.e += noise
    b.e += noise
    ph.integrate_stress(a, 0, 6)
    for lo, hi in ((0, 2), (2, 3), (3, 6)):
        ph.integrate_stress(b, lo, hi)
    assert np.array_equal(a.gx, b.gx)
    assert np.array_equal(a.gz, b.gz)


def test_update_volumes_deferred_write_chunk_independent():
    a = ph.HydroState.initial(6)
    b = ph.HydroState.initial(6)
    for st in (a, b):
        st.kappa[:] = 0.05
    ph.update_volumes(a, 0.1, 0, 6)
    for lo, hi in ((0, 1), (1, 4), (4, 6)):
        ph.update_volumes(b, 0.1, lo, hi)
    assert np.array_equal(a.e_incr, b.e_incr)


def test_update_volumes_conserves_energy(state):
    state.kappa[:] = 0.05
    # replicate ghosts so boundary fluxes vanish
    for arr in (state.e, state.kappa):
        arr[0] = arr[1]
        arr[-1] = arr[-2]
        arr[:, 0] = arr[:, 1]
        arr[:, -1] = arr[:, -2]
        arr[:, :, 0] = arr[:, :, 1]
        arr[:, :, -1] = arr[:, :, -2]
    ph.update_volumes(state, 0.1, 0, state.s)
    assert state.e_incr.sum() == pytest.approx(0.0, abs=1e-12)
    assert state.e_incr.max() != 0.0  # the spike actually diffuses


def test_acceleration_moves_momentum(state):
    ph.integrate_stress(state, 0, state.s)
    ph.acceleration(state, 0.1, 0, state.s)
    assert state.interior(state.mx).any()


def test_acceleration_bc_zeroes_global_faces(state):
    state.mx[:] = 1.0
    state.my[:] = 1.0
    state.mz[:] = 1.0
    ph.acceleration_bc(state, (0, 0, 0), 0, state.s)
    assert np.all(state.mx[1:-1, 1:-1, 1] == 0.0)
    assert np.all(state.my[1:-1, 1, 1:-1] == 0.0)
    assert np.all(state.mz[1, 1:-1, 1:-1] == 0.0)
    # interior untouched
    assert np.all(state.mx[2, 2, 2] == 1.0)


def test_acceleration_bc_not_applied_off_boundary(state):
    state.mx[:] = 1.0
    ph.acceleration_bc(state, (1, 1, 1), 0, state.s)
    assert np.all(state.mx[1:-1, 1:-1, 1] == 1.0)


def test_velocity_cutoff_flushes_small_values(state):
    state.mx[1:-1, 1:-1, 1:-1] = 1e-15
    state.my[1:-1, 1:-1, 1:-1] = 0.5
    ph.velocity_cutoff(state, 1e-12, 0, state.s)
    assert np.all(state.interior(state.mx) == 0.0)
    assert np.all(state.interior(state.my) == 0.5)


def test_hourglass_damps_momentum(state):
    state.mx[1:-1, 1:-1, 1:-1] = 2.0
    ph.hourglass_control(state, dt=1.0, eps=0.1, lo=0, hi=state.s)
    assert np.allclose(state.interior(state.mx), 1.8)


def test_position_update_integrates_velocity(state):
    state.mx[1:-1, 1:-1, 1:-1] = 1.0
    ph.position_update(state, 0.5, 0, state.s)
    assert np.allclose(state.pos[0], 0.5)
    assert np.all(state.pos[1] == 0.0)


def test_eos_safe_and_monotone_in_energy(state):
    state.q[:] = 0.0
    ph.eval_eos(state, iters=4, lo=0, hi=state.s)
    p_spike = state.p[1, 1, 1]
    p_bg = state.p[3, 3, 3]
    assert p_spike > p_bg > 0
    assert np.isfinite(state.p).all()


def test_kappa_from_pressure(state):
    ph.eval_eos(state, 3, 0, state.s)
    ph.sound_speed_kappa(state, k0=0.05, k1=0.05, lo=0, hi=state.s)
    interior = state.interior(state.kappa)
    assert interior.min() >= 0.05
    assert np.isfinite(interior).all()


def test_monotonic_q_only_compression(state):
    state.q[1:-1, 1:-1, 1:-1] = -2.0  # divergence proxy: compression
    ph.monotonic_q(state, qcoef=1.5, lo=0, hi=state.s)
    assert np.allclose(state.interior(state.q), 1.5 * 4.0)
    state.q[1:-1, 1:-1, 1:-1] = 2.0  # expansion → no viscosity
    ph.monotonic_q(state, qcoef=1.5, lo=0, hi=state.s)
    assert np.all(state.interior(state.q) == 0.0)


def test_courant_local_max(state):
    state.kappa[1:-1, 1:-1, 1:-1] = 0.1
    state.kappa[2, 2, 2] = 0.9
    assert ph.courant_local_max(state, 0, state.s) == pytest.approx(0.9)
