"""The communication-shape zoo: every plugin runs, checks, and fails loudly.

Each zoo workload is executed at a couple of scales, its validity
invariant is evaluated on the honest result, and then the result is
tampered with to prove the invariant actually bites
(:class:`~repro.errors.WorkloadValidityError`).  Section traversal is
also pinned against the declared ``SECTIONS``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profile import SectionProfile
from repro.errors import WorkloadValidityError
from repro.machine.catalog import laptop
from repro.workloads import registry
from repro.workloads.zoo.halo2d import balanced_dims
from repro.workloads.zoo.sparsegraph import graph_strides
from repro.workloads.zoo.taskfarm import task_value

ZOO = ("halo2d", "taskfarm", "ringpipe", "bucketsort", "sparsegraph")

#: Small parameterisations so the whole module stays fast.
SMALL = {
    "halo2d": {"ny": 16, "nx": 16, "steps": 3},
    "taskfarm": {"ntasks": 24, "task_flops": 1e5},
    "ringpipe": {"rounds": 1, "blocklen": 32},
    "bucketsort": {"n_local": 64},
    "sparsegraph": {"m": 4, "steps": 4},
}


def _run(name, p, **kwargs):
    cls = registry.get(name)
    plugin = cls(dict(SMALL[name]))
    res = plugin.run(p, machine=laptop(max(p, 4)), seed=11, **kwargs)
    return plugin, res


@pytest.mark.parametrize("name", ZOO)
@pytest.mark.parametrize("p", [1, 4])
def test_zoo_runs_and_validates(name, p):
    plugin, res = _run(name, p)
    plugin.check(res)  # must not raise on an honest run
    metrics = plugin.metrics(res)
    assert metrics, f"{name} reports no metrics"
    for key, value in metrics.items():
        assert np.isfinite(value), (name, key)


@pytest.mark.parametrize("name", ZOO)
def test_zoo_section_traversal_matches_declaration(name):
    plugin, res = _run(name, 4)
    prof = SectionProfile.from_run(res, p=4)
    declared = list(registry.get(name).SECTIONS)
    seen = [lbl for lbl in prof.labels() if lbl not in ("MAIN", "MPI_MAIN")]
    assert set(seen) <= set(declared), (seen, declared)
    key = registry.get(name).KEY_SECTIONS
    assert set(key) <= set(seen), f"{name} never entered its key sections"


@pytest.mark.parametrize("name,tamper", [
    ("halo2d", lambda r: r.results[0].__setitem__(
        "final_sum", r.results[0]["final_sum"] + 1.0)),
    ("taskfarm", lambda r: r.results[0].__setitem__(
        "sum", r.results[0]["sum"] + 1)),
    ("bucketsort", lambda r: r.results[0].__setitem__(
        "sum", r.results[0]["sum"] + 1)),
    ("sparsegraph", lambda r: r.results[0].__setitem__(
        "local_sum", r.results[0]["local_sum"] * 1.5)),
])
def test_zoo_checks_fail_loudly_on_tampered_results(name, tamper):
    plugin, res = _run(name, 4)
    tamper(res)
    with pytest.raises(WorkloadValidityError):
        plugin.check(res)


def test_ringpipe_check_fails_on_tampered_token():
    plugin, res = _run("ringpipe", 4)
    res.results[0]["token"] = res.results[0]["token"] + 1
    with pytest.raises(WorkloadValidityError):
        plugin.check(res)


def test_taskfarm_imbalance_metric_and_exact_totals():
    plugin, res = _run("taskfarm", 4)
    counts = [r["count"] for r in res.results]
    assert counts[0] == 0  # the master only deals tasks
    assert sum(counts) == SMALL["taskfarm"]["ntasks"]
    assert plugin.metrics(res)["task_imbalance"] >= 1.0
    want = sum(task_value(t) for t in range(SMALL["taskfarm"]["ntasks"]))
    assert res.results[1]["total"] == want


def test_bucketsort_outputs_are_sorted_and_partitioned():
    plugin, res = _run("bucketsort", 4)
    lows = [r["lo"] for r in res.results]
    his = [r["hi"] for r in res.results]
    assert lows == sorted(lows)
    for r in res.results:
        keys = r["keys"]
        assert np.all(keys[:-1] <= keys[1:])
        if len(keys):
            assert r["lo"] <= int(keys[0]) and int(keys[-1]) < r["hi"]
    assert his[-1] >= max(int(r["keys"][-1]) for r in res.results
                          if len(r["keys"]))


def test_balanced_dims_is_most_square():
    assert balanced_dims(1) == (1, 1)
    assert balanced_dims(4) == (2, 2)
    assert balanced_dims(6) == (2, 3)
    assert balanced_dims(12) == (3, 4)
    assert balanced_dims(17) == (1, 17)  # prime: degenerate row layout
    for p in range(1, 30):
        py, px = balanced_dims(p)
        assert py * px == p and py <= px


def test_graph_strides_are_valid_neighbours():
    assert graph_strides(1, 3, 5) == []
    for p in (2, 8, 17):
        strides = graph_strides(p, 3, 5)
        assert strides, p
        assert len(set(strides)) == len(strides)
        assert all(1 <= s < p for s in strides)


@pytest.mark.parametrize("name", ZOO)
def test_zoo_param_schema_rejects_unknown_and_bad_types(name):
    from repro.errors import WorkloadError

    cls = registry.get(name)
    with pytest.raises(WorkloadError, match="unknown parameters"):
        cls.validate_params({"definitely_not_a_param": 1})
    first = sorted(cls.PARAMS)[0]
    with pytest.raises(WorkloadError):
        cls.validate_params({first: object()})
