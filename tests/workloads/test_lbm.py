"""D2Q9 lattice-Boltzmann workload: physics invariants + sections."""

import numpy as np
import pytest

from repro.core.profile import SectionProfile
from repro.errors import ReproError
from repro.machine.catalog import nehalem_cluster
from repro.workloads.lbm import (
    EX,
    EY,
    OPP,
    W,
    LBMBenchmark,
    LBMConfig,
    equilibrium,
    moments,
)


def test_lattice_constants_consistent():
    assert W.sum() == pytest.approx(1.0)
    assert (W * EX).sum() == pytest.approx(0.0)
    assert (W * EY).sum() == pytest.approx(0.0)
    # OPP really reverses every link
    for k in range(9):
        assert EX[OPP[k]] == -EX[k]
        assert EY[OPP[k]] == -EY[k]


def test_equilibrium_moments_roundtrip():
    rng = np.random.default_rng(0)
    rho = 1.0 + 0.1 * rng.random((5, 7))
    ux = 0.05 * (rng.random((5, 7)) - 0.5)
    uy = 0.05 * (rng.random((5, 7)) - 0.5)
    feq = equilibrium(rho, ux, uy)
    r2, ux2, uy2 = moments(feq)
    assert np.allclose(r2, rho)
    assert np.allclose(ux2, ux, atol=1e-3)
    assert np.allclose(uy2, uy, atol=1e-3)


def test_config_validation():
    with pytest.raises(ReproError):
        LBMConfig(ny=2)
    with pytest.raises(ReproError):
        LBMConfig(tau=0.5)
    with pytest.raises(ReproError):
        LBMConfig(steps=0)


@pytest.fixture(scope="module")
def small_run():
    bench = LBMBenchmark(LBMConfig(ny=16, nx=20, steps=30))
    return bench.run(2, machine=nehalem_cluster(nodes=1, jitter=0.0))


def test_mass_conserved(small_run):
    _, summary = small_run
    assert summary["mass_drift"] < 1e-13


def test_flow_develops_in_force_direction(small_run):
    _, summary = small_run
    assert summary["momentum_x"] > 0


def test_velocity_profile_poiseuille_shape():
    bench = LBMBenchmark(LBMConfig(ny=16, nx=12, steps=400))
    _, summary = bench.run(1, machine=nehalem_cluster(nodes=1, jitter=0.0))
    prof = summary["ux_profile"]
    # channel flow: maximum near the centre, near-zero at the walls,
    # symmetric about the mid-plane
    centre = len(prof) // 2
    assert abs(int(np.argmax(prof)) - centre) <= 1  # peak at the mid-plane
    assert prof[centre] >= 0.999 * max(prof)
    assert prof[0] < 0.35 * prof[centre]
    assert np.allclose(prof, prof[::-1], rtol=1e-6, atol=1e-12)


@pytest.mark.parametrize("p", [2, 4])
def test_decomposition_invariance_bitwise(p):
    cfg = LBMConfig(ny=16, nx=20, steps=12)
    mach = nehalem_cluster(nodes=1, jitter=0.0)
    _, ref = LBMBenchmark(cfg).run(1, machine=mach)
    _, par = LBMBenchmark(cfg).run(p, machine=mach)
    assert np.array_equal(ref["f"], par["f"])


def test_sections_recorded():
    bench = LBMBenchmark(LBMConfig.tiny(steps=5))
    res, _ = bench.run(2, machine=nehalem_cluster(nodes=1, jitter=0.0))
    prof = SectionProfile.from_run(res)
    assert {"INIT", "COLLIDE", "HALO", "STREAM", "MACRO"} <= set(prof.labels())
    assert prof.count("COLLIDE") == 2 * 5
    assert prof.count("INIT") == 2


def test_collide_and_stream_dominate_execution():
    """Collision and streaming are the two heavy phases (as in real LBM
    codes); moment computation stays secondary."""
    bench = LBMBenchmark(LBMConfig(ny=32, nx=32, steps=10))
    res, _ = bench.run(1, machine=nehalem_cluster(nodes=1, jitter=0.0))
    prof = SectionProfile.from_run(res)
    heavy = prof.percent_of_execution("COLLIDE") + prof.percent_of_execution("STREAM")
    assert heavy > 55.0
    assert prof.total("COLLIDE") > prof.total("MACRO")
    assert prof.total("COLLIDE") > 0.4 * prof.total("STREAM")


def test_strong_scaling_speedup():
    cfg = LBMConfig(ny=64, nx=64, steps=15)
    mach = nehalem_cluster(nodes=1, jitter=0.0)
    t1 = LBMBenchmark(cfg).run(1, machine=mach)[0].walltime
    t8 = LBMBenchmark(cfg).run(8, machine=mach)[0].walltime
    assert t8 < t1 / 3


def test_run_deterministic():
    cfg = LBMConfig.tiny()
    mach = nehalem_cluster(nodes=1)
    r1, s1 = LBMBenchmark(cfg).run(3, machine=mach, seed=4, compute_jitter=0.05)
    r2, s2 = LBMBenchmark(cfg).run(3, machine=mach, seed=4, compute_jitter=0.05)
    assert r1.clocks == r2.clocks
    assert s1["mass"] == s2["mass"]
