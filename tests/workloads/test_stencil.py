"""Row partitioning, halo exchange, and the mean-filter kernel."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads.stencil import (
    exchange_row_halos,
    mean_filter_3x3,
    row_partition,
)

from tests.conftest import mpi


def test_row_partition_near_equal():
    assert row_partition(10, 3) == [4, 3, 3]
    assert row_partition(9, 3) == [3, 3, 3]
    assert row_partition(5, 5) == [1, 1, 1, 1, 1]


def test_row_partition_sums_to_total():
    for n in (7, 64, 577):
        for p in (1, 2, 3, 8, 7):
            if n >= p:
                assert sum(row_partition(n, p)) == n


def test_row_partition_validation():
    with pytest.raises(ReproError):
        row_partition(2, 3)
    with pytest.raises(ReproError):
        row_partition(5, 0)


def test_mean_filter_uniform_field_fixed_interior():
    slab = np.ones((5, 5, 1))
    row = np.ones((5, 1))
    out = mean_filter_3x3(slab, row, row)
    # interior cells keep value 1 (all 9 neighbours are 1)
    assert out[2, 2, 0] == pytest.approx(1.0)
    # lateral borders feel the zero padding
    assert out[2, 0, 0] == pytest.approx(6 / 9)


def test_mean_filter_zero_halos_darken_edges():
    slab = np.ones((4, 4, 1))
    zero = np.zeros((4, 1))
    out = mean_filter_3x3(slab, zero, zero)
    assert out[0, 1, 0] == pytest.approx(6 / 9)
    assert out[0, 0, 0] == pytest.approx(4 / 9)


def test_mean_filter_impulse_spreads():
    slab = np.zeros((5, 5, 1))
    slab[2, 2, 0] = 9.0
    zero = np.zeros((5, 1))
    out = mean_filter_3x3(slab, zero, zero)
    assert out[1:4, 1:4, 0] == pytest.approx(np.ones((3, 3)))
    assert out[0, 0, 0] == 0.0


def test_mean_filter_uses_halos():
    slab = np.zeros((2, 3, 1))
    up = np.full((3, 1), 9.0)
    down = np.zeros((3, 1))
    out = mean_filter_3x3(slab, up, down)
    assert out[0, 1, 0] == pytest.approx(3.0)  # 3 halo cells above
    assert out[1, 1, 0] == 0.0


def test_mean_filter_bad_shape():
    with pytest.raises(ReproError):
        mean_filter_3x3(np.zeros((4, 4)), np.zeros(4), np.zeros(4))


def test_exchange_row_halos_moves_boundary_rows():
    def main(ctx):
        comm = ctx.comm
        local = np.full((2, 3, 1), float(comm.rank))
        up = np.full((3, 1), -1.0)
        down = np.full((3, 1), -1.0)
        exchange_row_halos(comm, local, up, down)
        return (up.copy(), down.copy())

    res = mpi(3, main)
    up1, down1 = res.results[1]
    assert np.all(up1 == 0.0)  # bottom row of rank 0
    assert np.all(down1 == 2.0)  # top row of rank 2
    up0, down2 = res.results[0][0], res.results[2][1]
    assert np.all(up0 == -1.0)  # domain edge untouched
    assert np.all(down2 == -1.0)
