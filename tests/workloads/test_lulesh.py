"""LULESH benchmark driver: configs, sections, conservation, invariance."""

import numpy as np
import pytest

from repro.core.profile import SectionProfile
from repro.errors import ReproError
from repro.machine.catalog import knl_node
from repro.workloads.lulesh import (
    PAPER_TOTAL_ELEMENTS,
    LuleshBenchmark,
    LuleshConfig,
    lulesh_strong_scaling_configs,
)

#: The 21 labels the benchmark instruments (excluding MPI_MAIN).
EXPECTED_SECTIONS = {
    "timeloop",
    "LagrangeNodal",
    "CommSBN",
    "CalcForceForNodes",
    "IntegrateStressForElems",
    "CalcHourglassControlForElems",
    "CalcAccelerationForNodes",
    "ApplyAccelerationBC",
    "CalcVelocityForNodes",
    "CalcPositionForNodes",
    "LagrangeElements",
    "CalcLagrangeElements",
    "CalcKinematicsForElems",
    "CalcQForElems",
    "CommMonoQ",
    "ApplyMaterialPropertiesForElems",
    "EvalEOSForElems",
    "CommEnergy",
    "UpdateVolumesForElems",
    "CalcTimeConstraintsForElems",
    "CommDt",
}


def test_twenty_one_sections_as_in_paper():
    assert len(EXPECTED_SECTIONS) == 21


def test_strong_scaling_configs_match_figure7():
    configs = lulesh_strong_scaling_configs()
    assert configs == [(1, 48), (8, 24), (27, 16), (64, 12)]
    for p, s in configs:
        assert p * s**3 == PAPER_TOTAL_ELEMENTS


def test_strong_scaling_configs_reject_impossible():
    with pytest.raises(ReproError):
        lulesh_strong_scaling_configs(process_counts=(4,))  # not a cube
    with pytest.raises(ReproError):
        lulesh_strong_scaling_configs(1000, process_counts=(27,))


def test_config_validation():
    with pytest.raises(ReproError):
        LuleshConfig(s=1)
    with pytest.raises(ReproError):
        LuleshConfig(steps=0)
    assert LuleshConfig(s=8).with_side(4).s == 4


@pytest.fixture(scope="module")
def small_run():
    bench = LuleshBenchmark(LuleshConfig(s=6, steps=4, return_fields=True))
    run, phys = bench.run(8, nthreads=2, machine=knl_node(jitter=0.0))
    return bench, run, phys


def test_all_sections_recorded(small_run):
    _, run, _ = small_run
    prof = SectionProfile.from_run(run)
    assert set(prof.labels()) == EXPECTED_SECTIONS | {"MPI_MAIN"}


def test_timeloop_dominates_main(small_run):
    """The paper: 'the timeloop section was accounting for 99% of the
    main function time'."""
    _, run, _ = small_run
    prof = SectionProfile.from_run(run)
    assert prof.total("timeloop") / prof.total("MPI_MAIN") > 0.95


def test_lagrange_phases_dominate_timeloop(small_run):
    _, run, _ = small_run
    prof = SectionProfile.from_run(run)
    lagrange = prof.total("LagrangeNodal") + prof.total("LagrangeElements")
    assert lagrange / prof.total("timeloop") > 0.8


def test_energy_conserved(small_run):
    _, _, phys = small_run
    assert phys.energy_drift < 1e-12


def test_energy_field_assembled(small_run):
    _, _, phys = small_run
    assert phys.energy_field.shape == (12, 12, 12)
    # spike has diffused but mass stays near the origin corner
    assert phys.energy_field[0, 0, 0] > phys.energy_field[-1, -1, -1]


def test_decomposition_invariance_p1_vs_p8():
    common = dict(steps=4, return_fields=True)
    r1 = LuleshBenchmark(LuleshConfig(s=8, **common)).run(
        1, machine=knl_node(jitter=0.0)
    )[1]
    r8 = LuleshBenchmark(LuleshConfig(s=4, **common)).run(
        8, machine=knl_node(jitter=0.0)
    )[1]
    assert np.array_equal(r1.energy_field, r8.energy_field)


def test_decomposition_invariance_p8_vs_p27():
    common = dict(steps=3, return_fields=True)
    r8 = LuleshBenchmark(LuleshConfig(s=6, **common)).run(
        8, machine=knl_node(jitter=0.0)
    )[1]
    r27 = LuleshBenchmark(LuleshConfig(s=4, **common)).run(
        27, machine=knl_node(jitter=0.0)
    )[1]
    assert np.array_equal(r8.energy_field, r27.energy_field)


def test_thread_count_does_not_change_physics():
    cfg = LuleshConfig(s=6, steps=4, return_fields=True)
    f1 = LuleshBenchmark(cfg).run(1, nthreads=1, machine=knl_node(jitter=0.0))[1]
    f16 = LuleshBenchmark(cfg).run(1, nthreads=16, machine=knl_node(jitter=0.0))[1]
    assert np.array_equal(f1.energy_field, f16.energy_field)


def test_dt_adapts_globally(small_run):
    _, run, phys = small_run
    assert phys.final_dt > 0
    dts = {r["dt"] for r in run.results}
    assert len(dts) == 1  # allreduce agreement


def test_non_cube_process_count_fails():
    from repro.errors import RankFailedError, MPIError

    bench = LuleshBenchmark(LuleshConfig(s=4, steps=1))
    with pytest.raises(RankFailedError) as ei:
        bench.run(6, machine=knl_node())
    assert isinstance(ei.value.original, MPIError)


def test_omp_regions_executed(small_run):
    _, run, _ = small_run
    # 12 parallel regions per step × 4 steps
    assert all(r["omp_regions"] == 48 for r in run.results)
