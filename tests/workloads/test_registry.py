"""The workload plugin registry: registration rules and discovery routes.

Covers the decorator's eager validation, idempotent re-registration,
duplicate-name rejection, unknown-name diagnostics, and the
``REPRO_WORKLOAD_PATH`` zero-packaging discovery route with both lenient
and strict failure modes.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import WorkloadError
from repro.workloads import registry
from repro.workloads.base import Param, WorkloadPlugin

BUILTINS = {
    "bucketsort", "convolution", "halo2d", "lbm", "lulesh",
    "ringpipe", "sparsegraph", "taskfarm",
}


def test_discover_lists_builtin_plugins_sorted():
    names = registry.discover()
    assert BUILTINS <= set(names)
    assert names == sorted(names)
    assert registry.names() == names


def test_zoo_and_paper_domains_cover_the_builtins():
    plugins = registry.all_plugins()
    domains = {name: plugins[name].DOMAIN for name in BUILTINS}
    assert domains["convolution"] == "paper"
    assert domains["lulesh"] == "paper"
    assert sum(1 for d in domains.values() if d == "zoo") == 5


def test_get_unknown_name_lists_known_names():
    with pytest.raises(WorkloadError, match="unknown workload") as err:
        registry.get("nope")
    assert "convolution" in str(err.value)
    assert "halo2d" in str(err.value)


def test_register_is_idempotent_per_class():
    cls = registry.get("halo2d")
    assert registry.register(cls) is cls
    assert registry.get("halo2d") is cls


def test_register_rejects_duplicate_name_from_different_class():
    existing = registry.get("ringpipe")

    class Imposter(existing):
        pass

    with pytest.raises(WorkloadError, match="already registered"):
        registry.register(Imposter)
    assert registry.get("ringpipe") is existing


def test_register_validates_declarative_surface():
    class NoName(WorkloadPlugin):
        NAME = ""
        SECTIONS = ("A",)
        COMM_PATTERN = "x"

    with pytest.raises(WorkloadError, match="NAME"):
        registry.register(NoName)

    class NoSections(WorkloadPlugin):
        NAME = "nosections"
        COMM_PATTERN = "x"

    with pytest.raises(WorkloadError, match="SECTIONS"):
        registry.register(NoSections)

    class BadKey(WorkloadPlugin):
        NAME = "badkey"
        SECTIONS = ("A",)
        KEY_SECTIONS = ("B",)
        COMM_PATTERN = "x"

    with pytest.raises(WorkloadError, match="KEY_SECTIONS"):
        registry.register(BadKey)

    class BadSchema(WorkloadPlugin):
        NAME = "badschema"
        SECTIONS = ("A",)
        COMM_PATTERN = "x"
        PARAMS = {"n": Param(default=-1, kind=int, minimum=0)}

    with pytest.raises(WorkloadError, match="must be >="):
        registry.register(BadSchema)

    with pytest.raises(WorkloadError, match="subclass"):
        registry.register(object)  # type: ignore[arg-type]


PLUGIN_FILE = textwrap.dedent('''
    """Test plugin discovered via REPRO_WORKLOAD_PATH."""
    from repro.workloads.base import Param, WorkloadPlugin
    from repro.workloads.registry import register


    @register
    class PathPlugin(WorkloadPlugin):
        """A do-nothing plugin for discovery tests."""
        NAME = "pathplugin"
        DOMAIN = "test"
        SECTIONS = ("ONLY",)
        KEY_SECTIONS = ("ONLY",)
        COMM_PATTERN = "none"
        PARAMS = {"n": Param(default=1, kind=int)}
''')


@pytest.fixture
def clean_registry_env(monkeypatch):
    """Restore discovery memoisation and drop test plugins afterwards."""
    yield monkeypatch
    registry.unregister("pathplugin")
    monkeypatch.delenv(registry.WORKLOAD_PATH_ENV, raising=False)
    registry.discover(refresh=True)


def test_workload_path_file_discovery(tmp_path, clean_registry_env):
    plugin = tmp_path / "pathplugin.py"
    plugin.write_text(PLUGIN_FILE)
    clean_registry_env.setenv(registry.WORKLOAD_PATH_ENV, str(plugin))
    names = registry.discover(refresh=True)
    assert "pathplugin" in names
    assert registry.get("pathplugin").DOMAIN == "test"


def test_workload_path_directory_discovery(tmp_path, clean_registry_env):
    (tmp_path / "pathplugin.py").write_text(PLUGIN_FILE)
    clean_registry_env.setenv(registry.WORKLOAD_PATH_ENV, str(tmp_path))
    assert "pathplugin" in registry.discover(refresh=True)


def test_workload_path_broken_plugin_is_skipped_unless_strict(
        tmp_path, clean_registry_env):
    bad = tmp_path / "broken.py"
    bad.write_text("raise RuntimeError('boom')\n")
    clean_registry_env.setenv(registry.WORKLOAD_PATH_ENV, str(bad))
    names = registry.discover(refresh=True)  # lenient: logged skip
    assert "broken" not in names
    with pytest.raises(WorkloadError, match="broken.py failed"):
        registry.discover(refresh=True, strict=True)


def test_workload_path_missing_entry_strictness(tmp_path, clean_registry_env):
    clean_registry_env.setenv(
        registry.WORKLOAD_PATH_ENV, str(tmp_path / "absent.py"))
    registry.discover(refresh=True)  # lenient: skipped
    with pytest.raises(WorkloadError, match="neither"):
        registry.discover(refresh=True, strict=True)


def test_describe_is_declarative_and_json_ready():
    import json

    for name in registry.discover():
        desc = registry.get(name).describe()
        assert desc["name"] == name
        assert desc["sections"], name
        assert set(desc["key_sections"]) <= set(desc["sections"])
        json.dumps(desc)  # must be JSON-serialisable as-is
