"""Synthetic image generation."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.workloads.images import image_checksum, make_image


def test_shape_and_dtype():
    img = make_image(20, 30, 3)
    assert img.shape == (20, 30, 3)
    assert img.dtype == np.float64


def test_values_in_unit_interval():
    img = make_image(50, 50, 3, noise=0.3)
    assert img.min() >= 0.0 and img.max() <= 1.0


def test_deterministic_per_seed():
    a = make_image(16, 16, seed=5)
    b = make_image(16, 16, seed=5)
    c = make_image(16, 16, seed=6)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_noise_zero_is_pure_signal():
    a = make_image(16, 16, seed=1, noise=0.0)
    b = make_image(16, 16, seed=2, noise=0.0)
    assert np.array_equal(a, b)  # seed only affects noise


def test_channels_differ():
    img = make_image(32, 32, 3, noise=0.0)
    assert not np.array_equal(img[..., 0], img[..., 1])


def test_invalid_shape_rejected():
    with pytest.raises(ReproError):
        make_image(0, 10)
    with pytest.raises(ReproError):
        make_image(10, 10, noise=1.5)


def test_checksum_stable_and_sensitive():
    a = make_image(16, 16, seed=1)
    assert image_checksum(a) == image_checksum(a.copy())
    b = a.copy()
    b[0, 0, 0] += 1e-12
    assert image_checksum(a) != image_checksum(b)


def test_checksum_includes_shape():
    a = np.zeros((2, 8, 1))
    b = np.zeros((4, 4, 1))
    assert image_checksum(a) != image_checksum(b)
