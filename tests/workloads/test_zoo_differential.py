"""Differential gate for the zoo: both engines, bit for bit.

Every zoo workload must produce byte-identical results, clocks and
network counters on the thread-free generator engine and on the
thread-per-rank oracle, at an awkward mix of rank counts (including a
prime).  Fault injection must fail loudly — a crashed rank can never
leak a silently-corrupt profile past the workload's validity check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RankFailedError, WorkloadValidityError
from repro.faults.plan import FaultPlan
from repro.machine.catalog import laptop
from repro.workloads import registry

ZOO = ("halo2d", "taskfarm", "ringpipe", "bucketsort", "sparsegraph")

#: Small but non-degenerate parameterisations (p=17 must stay legal).
SMALL = {
    "halo2d": {"ny": 34, "nx": 17, "steps": 3},
    "taskfarm": {"ntasks": 40, "task_flops": 1e5},
    "ringpipe": {"rounds": 2, "blocklen": 16},
    "bucketsort": {"n_local": 48},
    "sparsegraph": {"m": 4, "steps": 5},
}


def _eq(a, b):
    """Recursive exact equality that tolerates numpy payloads."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            and a.dtype == b.dtype and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_eq(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_eq(a[k], b[k]) for k in a))
    return a == b


def _both(name, p, **kwargs):
    """Run ``name`` at ``p`` on both engines; (plugin, threadfree, threads)."""
    plugin = registry.get(name)(dict(SMALL[name]))
    kwargs.setdefault("machine", laptop(cores=max(2, p)))
    kwargs.setdefault("seed", 5)
    kwargs.setdefault("compute_jitter", 0.04)
    kwargs.setdefault("noise_floor", 1e-7)
    tf = plugin.run(p, engine="threadfree", **kwargs)
    th = plugin.run(p, engine="threads", **kwargs)
    return plugin, tf, th


@pytest.mark.parametrize("name", ZOO)
@pytest.mark.parametrize("p", [2, 8, 17])
def test_zoo_bit_identical_across_engines(name, p):
    plugin, tf, th = _both(name, p)
    assert _eq(tf.results, th.results)
    assert tf.clocks == th.clocks          # exact float equality, per rank
    assert tf.walltime == th.walltime
    assert tf.network == th.network
    assert tf.section_events == th.section_events
    assert tf.engine == "threadfree" and th.engine == "threads"
    plugin.check(tf)
    plugin.check(th)
    assert plugin.metrics(tf) == plugin.metrics(th)


@pytest.mark.parametrize("name", ZOO)
def test_zoo_crash_fault_fails_loudly_on_both_engines(name):
    crash = FaultPlan.from_dict({"seed": 1, "faults": [
        {"kind": "crash", "rank": 0, "at_time": 0.0}]})
    plugin = registry.get(name)(dict(SMALL[name]))
    for engine in ("threadfree", "threads"):
        with pytest.raises(RankFailedError):
            plugin.run(4, machine=laptop(cores=4), seed=5,
                       faults=crash, engine=engine)


def test_fault_corrupted_results_never_pass_validity():
    plugin, tf, _ = _both("ringpipe", 4)
    # Simulate a fault that silently corrupts rank 2's payload: the
    # validity check must reject the run rather than average it away.
    tf.results[2]["token"] = tf.results[2]["token"][::-1].copy()
    with pytest.raises(WorkloadValidityError):
        plugin.check(tf)
