"""Regression-baseline snapshots and comparisons."""

import pytest

from repro.errors import AnalysisError
from repro.harness.baseline import (
    BaselineDiff,
    compare_to_baseline,
    save_baseline,
)
from repro.harness.experiments import ExperimentResult, table7


def _result(rows=None, checks=None, exp_id="x"):
    return ExperimentResult(
        exp_id,
        "test",
        rows if rows is not None else [{"p": 1, "v": 10.0}, {"p": 2, "v": 5.0}],
        checks if checks is not None else {"ok": True},
    )


def test_roundtrip_identical_is_ok():
    res = _result()
    diff = compare_to_baseline(res, save_baseline(res))
    assert diff.ok
    assert "baseline OK" in diff.render()


def test_check_regression_detected():
    base = save_baseline(_result(checks={"ok": True, "other": True}))
    cur = _result(checks={"ok": True, "other": False})
    diff = compare_to_baseline(cur, base)
    assert not diff.ok
    assert diff.regressed_checks == ["other"]
    assert "REGRESSED" in diff.render()


def test_baseline_fail_may_stay_failed():
    base = save_baseline(_result(checks={"flaky": False}))
    cur = _result(checks={"flaky": False})
    assert compare_to_baseline(cur, base).ok


def test_new_checks_reported_not_failed():
    base = save_baseline(_result(checks={"ok": True}))
    cur = _result(checks={"ok": True, "brand_new": False})
    diff = compare_to_baseline(cur, base)
    assert diff.ok
    assert diff.new_checks == ["brand_new"]


def test_value_within_tolerance_ok():
    base = save_baseline(_result(rows=[{"p": 1, "v": 10.0}]))
    cur = _result(rows=[{"p": 1, "v": 12.0}])
    assert compare_to_baseline(cur, base, rel_tol=0.5).ok


def test_value_drift_detected():
    base = save_baseline(_result(rows=[{"p": 1, "v": 10.0}]))
    cur = _result(rows=[{"p": 1, "v": 100.0}])
    diff = compare_to_baseline(cur, base, rel_tol=0.5)
    assert not diff.ok
    assert diff.value_drifts[0][1] == "v"


def test_non_numeric_cells_compared_exactly():
    base = save_baseline(_result(rows=[{"p": 1, "who": "HALO"}]))
    cur = _result(rows=[{"p": 1, "who": "STORE"}])
    assert not compare_to_baseline(cur, base).ok


def test_missing_and_extra_rows():
    base = save_baseline(_result(rows=[{"p": 1, "v": 1.0}, {"p": 2, "v": 2.0}]))
    cur = _result(rows=[{"p": 1, "v": 1.0}, {"p": 4, "v": 4.0}])
    diff = compare_to_baseline(cur, base)
    assert not diff.ok  # missing p=2 row is a regression
    assert len(diff.missing_rows) == 1 and len(diff.extra_rows) == 1


def test_ignore_columns():
    base = save_baseline(_result(rows=[{"p": 1, "v": 1.0, "noise": 9.0}]))
    cur = _result(rows=[{"p": 1, "v": 1.0, "noise": 900.0}])
    assert compare_to_baseline(cur, base, ignore_columns=["noise"]).ok


def test_experiment_mismatch_rejected():
    base = save_baseline(_result(exp_id="a"))
    with pytest.raises(AnalysisError):
        compare_to_baseline(_result(exp_id="b"), base)


def test_against_real_table7():
    res = table7()
    base = save_baseline(res)
    assert compare_to_baseline(table7(), base).ok
    # A cost-model "bug" that changed the sides would be caught:
    broken = ExperimentResult(
        "table7", res.title,
        [dict(r, lulesh_s=r["lulesh_s"] + 1) for r in res.rows],
        res.checks,
    )
    diff = compare_to_baseline(broken, base, rel_tol=0.01)
    assert not diff.ok
