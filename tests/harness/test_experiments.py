"""Experiment entry points on synthetic and tiny-real data."""

import pytest

from repro.core.analysis import HybridAnalysis
from repro.core.profile import ScalingProfile, SectionProfile
from repro.errors import AnalysisError
from repro.harness import experiments as E
from repro.simmpi.sections_rt import SectionEvent


def _profile(n_ranks, walltime, sections):
    events = []
    for rank in range(n_ranks):
        t = 0.0
        for label, dt in sections.items():
            events.append(SectionEvent(rank, ("w",), label, "enter", t, (label,)))
            t += dt
            events.append(SectionEvent(rank, ("w",), label, "exit", t, (label,)))
    return SectionProfile.from_events(events, n_ranks, walltime)


def _paper_like_conv_profile():
    """A synthetic sweep engineered to exhibit the paper's Figure 5
    shapes: CONVOLVE ~1/p, HALO growing + noisy, serial LOAD/STORE."""
    sp = ScalingProfile("p")
    halo_noise = {1: 0.0, 2: 0.004, 4: 0.006, 8: 0.012, 16: 0.02, 32: 0.05,
                  64: 0.12, 128: 0.05, 256: 0.15}
    for p, halo in halo_noise.items():
        conv = 10.0 / p
        load = store = 0.02
        scatter = gather = 0.001 + 0.0001 * p
        wall = conv + halo + load + store + scatter + gather
        sp.add(p, _profile(p, wall, {
            "LOAD": load, "SCATTER": scatter, "CONVOLVE": conv,
            "HALO": halo, "GATHER": gather, "STORE": store,
        }))
    return sp


@pytest.fixture(scope="module")
def conv_profile():
    return _paper_like_conv_profile()


def test_fig5a_checks_pass(conv_profile):
    r = E.fig5a(conv_profile)
    assert r.passed, r.checks
    assert r.rows[0]["CONVOLVE"] > 90


def test_fig5b_checks_pass(conv_profile):
    r = E.fig5b(conv_profile)
    assert r.passed, r.checks


def test_fig5c_checks_pass(conv_profile):
    r = E.fig5c(conv_profile)
    assert r.passed, r.checks


def test_fig5d_checks_pass(conv_profile):
    r = E.fig5d(conv_profile)
    assert r.passed, r.checks
    assert any(isinstance(row.get("bound"), float) for row in r.rows)


def test_fig6_checks_pass(conv_profile):
    r = E.fig6(conv_profile, (64, 128, 256))
    assert r.passed, r.checks
    assert [row["p"] for row in r.rows] == [64, 128, 256]


def test_fig6_requires_sampled_counts(conv_profile):
    with pytest.raises(AnalysisError):
        E.fig6(conv_profile, (999,))


def test_fig6_defaults_to_parallel_scales(conv_profile):
    r = E.fig6(conv_profile)
    assert all(row["p"] > 1 for row in r.rows)


def test_table7_is_self_contained():
    r = E.table7()
    assert r.passed, r.checks
    assert [row["lulesh_s"] for row in r.rows] == [48, 24, 16, 12]


def _paper_like_hybrid(knl=True):
    h = HybridAnalysis()
    # Walltime model engineered after the paper's curves: MPI near-ideal;
    # OpenMP gains saturate then regress (earlier/harder on "KNL"); at
    # p >= 27 on the KNL threads only add overhead.
    sat = 16 if knl else 32
    import math

    for p in (1, 8, 27, 64) if knl else (1, 8, 27):
        for t in (1, 2, 4, 8, 16, 24, 32):
            base = 100.0 / p
            if knl and p >= 27:
                wall = base * (1.0 + 0.3 * math.log2(t)) if t > 1 else base
            else:
                omp_eff = min(t, sat) * (1.0 - 0.02 * t)
                wall = base / max(omp_eff, 0.5)
            h.add(p, t, _profile(p, wall, {
                "LagrangeNodal": 0.45 * wall, "LagrangeElements": 0.5 * wall,
            }))
    return h


def test_fig8_checks_pass():
    r = E.fig8(_paper_like_hybrid(knl=False))
    assert r.passed, r.checks


def test_fig9_checks_pass():
    r = E.fig9(_paper_like_hybrid(knl=True))
    assert r.passed, r.checks


def test_fig10_finds_inflexion_and_bounds():
    r = E.fig10(_paper_like_hybrid(knl=True))
    assert r.checks["elements_has_inflexion"]
    assert r.checks["two_phase_bound_caps_measured"]
    assert r.notes


def test_experiment_result_render_contains_checks(conv_profile):
    r = E.fig5a(conv_profile)
    text = r.render()
    assert "[fig5a]" in text and "PASS" in text


def test_registry_contains_every_artifact():
    assert set(E.ALL_EXPERIMENTS) == {
        "fig5a", "fig5b", "fig5c", "fig5d", "fig6", "table7",
        "fig8", "fig9", "fig10",
    }
