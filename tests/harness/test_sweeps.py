"""Sweep definitions: validation and paper parameters."""

import pytest

from repro.errors import ReproError
from repro.harness.sweeps import (
    ConvolutionSweep,
    LuleshGridSweep,
    default_convolution_sweep,
    default_lulesh_sweep,
    fig6_process_counts,
    lulesh_sides_for,
    paper_convolution_sweep,
    paper_lulesh_sweep,
)
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig
from repro.workloads.lulesh import PAPER_TOTAL_ELEMENTS, LuleshConfig


def test_default_convolution_sweep_valid():
    sw = default_convolution_sweep()
    assert 1 in sw.process_counts
    assert sw.ranks_per_node == 8  # paper's 8-core nodes
    sw.machine.validate_ranks(max(sw.process_counts), sw.ranks_per_node)


def test_paper_convolution_sweep_full_scale():
    sw = paper_convolution_sweep()
    assert max(sw.process_counts) == 456
    assert sw.config.height == 3744 and sw.config.steps == 1000
    assert sw.reps == 20  # "Runs were done twenty times and averaged"


def test_fig6_process_counts_match_paper():
    assert fig6_process_counts() == (64, 80, 112, 128, 144)


def test_convolution_sweep_requires_sequential_point():
    with pytest.raises(ReproError):
        ConvolutionSweep(
            config=ConvolutionConfig.tiny(),
            machine=nehalem_cluster(nodes=1),
            process_counts=(2, 4),
        )


def test_convolution_sweep_requires_reps():
    with pytest.raises(ReproError):
        ConvolutionSweep(
            config=ConvolutionConfig.tiny(),
            machine=nehalem_cluster(nodes=1),
            process_counts=(1, 2),
            reps=0,
        )


@pytest.mark.parametrize("name,pmax", [("knl", 64), ("broadwell", 27)])
def test_default_lulesh_sweep_grids(name, pmax):
    sw = default_lulesh_sweep(name)
    assert max(sw.grid) == pmax
    hw = sw.machine.node.max_threads
    for p, ts in sw.grid.items():
        assert max(ts) * p <= hw * 1.0 + hw  # bounded by hardware threads
        assert ts[0] == 1


def test_knl_grid_samples_inflexion_point():
    sw = default_lulesh_sweep("knl")
    assert 24 in sw.grid[1]  # the paper's inflexion point is sampled


def test_paper_lulesh_sweep_sides():
    sw = paper_lulesh_sweep("knl")
    assert sw.config.s == 48
    assert set(sw.grid) == {1, 8, 27, 64}


def test_unknown_machine_rejected():
    with pytest.raises(ReproError):
        default_lulesh_sweep("cray")
    with pytest.raises(ReproError):
        paper_lulesh_sweep("cray")


def test_grid_sweep_validation():
    with pytest.raises(ReproError):
        LuleshGridSweep(config=LuleshConfig(), machine=nehalem_cluster(1), grid={})
    with pytest.raises(ReproError):
        LuleshGridSweep(
            config=LuleshConfig(), machine=nehalem_cluster(1), grid={4: (1,)}
        )


def test_lulesh_sides_for_paper_total():
    sides = lulesh_sides_for((1, 8, 27, 64), PAPER_TOTAL_ELEMENTS)
    assert sides == {1: 48, 8: 24, 27: 16, 64: 12}
    with pytest.raises(ReproError):
        lulesh_sides_for((27,), 1000)
