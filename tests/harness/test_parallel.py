"""Parallel sweep execution: worker-count resolution, ordered
streaming, and bit-identical serial/parallel results."""

import os

import pytest

from repro.core.export import profile_to_json, scaling_to_json
from repro.errors import ReproError
from repro.harness.parallel import JOBS_ENV, map_points, resolve_jobs
from repro.harness.runner import run_convolution_sweep, run_lulesh_grid
from repro.harness.sweeps import ConvolutionSweep, LuleshGridSweep
from repro.machine.catalog import knl_node, nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig
from repro.workloads.lulesh import LuleshConfig


def _tiny_conv_sweep(**overrides):
    kwargs = dict(
        config=ConvolutionConfig.tiny(steps=3),
        machine=nehalem_cluster(nodes=1),
        process_counts=(1, 2, 4),
        reps=2,
    )
    kwargs.update(overrides)
    return ConvolutionSweep(**kwargs)


# -- resolve_jobs -----------------------------------------------------------


def test_resolve_jobs_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(None) == 1


def test_resolve_jobs_explicit_wins(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert resolve_jobs(3) == 3
    assert resolve_jobs(1) == 1


def test_resolve_jobs_env_var(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    monkeypatch.setenv(JOBS_ENV, "5")
    assert resolve_jobs() == 5
    # An explicit argument overrides the environment.
    assert resolve_jobs(2) == 2


def test_resolve_jobs_zero_means_all_cores(monkeypatch):
    """The automatic default never oversubscribes: it is exactly the
    host's core count, not a multiple of it."""
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    monkeypatch.setenv(JOBS_ENV, "0")
    assert resolve_jobs() == (os.cpu_count() or 1)


def test_resolve_jobs_warns_on_explicit_oversubscription(monkeypatch, capsys):
    """An explicit count beyond the host's cores is honoured (workers
    may block on I/O) but flagged on stderr, so a 0.57×-style
    "speedup" from contention is never silent again."""
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    assert resolve_jobs(16) == 16
    assert "oversubscribes" in capsys.readouterr().err
    monkeypatch.setenv(JOBS_ENV, "16")
    assert resolve_jobs() == 16
    assert "oversubscribes" in capsys.readouterr().err


def test_resolve_jobs_no_warning_within_core_count(monkeypatch, capsys):
    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    assert resolve_jobs(4) == 4
    assert capsys.readouterr().err == ""


def test_resolve_jobs_rejects_garbage_env(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ReproError):
        resolve_jobs()


# -- map_points -------------------------------------------------------------


def _square(x):  # module-level: picklable for worker processes
    return x * x


def test_map_points_serial_order():
    assert list(map_points(_square, [3, 1, 2], jobs=1)) == [9, 1, 4]


def test_map_points_parallel_preserves_submission_order():
    xs = list(range(12))
    assert list(map_points(_square, xs, jobs=2)) == [x * x for x in xs]


def test_map_points_single_task_stays_inline():
    assert list(map_points(_square, [7], jobs=8)) == [49]


def _boom(x):
    raise RuntimeError(f"worker failure on {x}")


def test_map_points_propagates_worker_exception():
    with pytest.raises(RuntimeError, match="worker failure"):
        list(map_points(_boom, [1, 2], jobs=2))


# -- runner integration -----------------------------------------------------


def test_convolution_parallel_bit_identical_to_serial():
    sweep = _tiny_conv_sweep()
    serial = run_convolution_sweep(sweep, jobs=1)
    parallel = run_convolution_sweep(sweep, jobs=2)
    assert scaling_to_json(parallel) == scaling_to_json(serial)


def test_convolution_parallel_progress_lines_match_serial():
    sweep = _tiny_conv_sweep()
    serial_lines, parallel_lines = [], []
    run_convolution_sweep(sweep, progress=serial_lines.append, jobs=1)
    run_convolution_sweep(sweep, progress=parallel_lines.append, jobs=2)
    assert parallel_lines == serial_lines
    # Canonical order: scales ascending, reps within each scale.
    assert [l.split()[1] for l in serial_lines] == [
        "p=1", "p=1", "p=2", "p=2", "p=4", "p=4"
    ]


def test_convolution_jobs_env_var_used(monkeypatch):
    sweep = _tiny_conv_sweep(process_counts=(1, 2), reps=1)
    serial = run_convolution_sweep(sweep, jobs=1)
    monkeypatch.setenv(JOBS_ENV, "2")
    enved = run_convolution_sweep(sweep)  # jobs=None → env
    assert scaling_to_json(enved) == scaling_to_json(serial)


def test_lulesh_parallel_bit_identical_to_serial():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=4, steps=2),
        machine=knl_node(jitter=0.0),
        grid={1: (1, 2), 8: (1,)},
        reps=1,
    )
    a_serial, d_serial = run_lulesh_grid(sweep, jobs=1)
    a_par, d_par = run_lulesh_grid(sweep, jobs=2)
    assert d_par == d_serial
    for p in a_serial.process_counts():
        for t in a_serial.thread_counts(p):
            for rs, rp in zip(a_serial.runs(p, t), a_par.runs(p, t)):
                assert profile_to_json(rp) == profile_to_json(rs)


def test_lulesh_parallel_progress_lines_match_serial():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=4, steps=2),
        machine=knl_node(jitter=0.0),
        grid={1: (1, 2)},
        reps=2,
    )
    serial_lines, parallel_lines = [], []
    run_lulesh_grid(sweep, progress=serial_lines.append, jobs=1)
    run_lulesh_grid(sweep, progress=parallel_lines.append, jobs=2)
    assert parallel_lines == serial_lines
