"""The persistent run cache: keying, storage, and runner replay."""

import json

import pytest

from repro.core.export import scaling_to_json
from repro.harness.cache import (
    CACHE_DIR_ENV,
    RunCache,
    default_cache_dir,
    maybe_default_cache,
    run_key,
)
from repro.harness.runner import run_convolution_sweep, run_lulesh_grid
from repro.harness.sweeps import ConvolutionSweep, LuleshGridSweep
from repro.machine.catalog import knl_node, nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig
from repro.workloads.lulesh import LuleshConfig


def _sweep(**overrides):
    kwargs = dict(
        config=ConvolutionConfig.tiny(steps=3),
        machine=nehalem_cluster(nodes=1),
        process_counts=(1, 2),
        reps=2,
    )
    kwargs.update(overrides)
    return ConvolutionSweep(**kwargs)


# -- keying -----------------------------------------------------------------


def test_same_inputs_same_key():
    cfg = ConvolutionConfig.tiny(steps=3)
    machine = nehalem_cluster(nodes=1)
    a = run_key(workload="convolution", config=cfg, p=2, seed=7, machine=machine)
    b = run_key(workload="convolution", config=cfg, p=2, seed=7, machine=machine)
    assert a == b


def test_config_change_changes_key():
    machine = nehalem_cluster(nodes=1)
    a = run_key(config=ConvolutionConfig.tiny(steps=3), p=2, seed=7, machine=machine)
    b = run_key(config=ConvolutionConfig.tiny(steps=4), p=2, seed=7, machine=machine)
    assert a != b


def test_seed_change_changes_key():
    cfg = ConvolutionConfig.tiny(steps=3)
    a = run_key(config=cfg, p=2, seed=7)
    b = run_key(config=cfg, p=2, seed=8)
    assert a != b


def test_machine_and_noise_change_key():
    cfg = ConvolutionConfig.tiny(steps=3)
    base = dict(config=cfg, p=2, seed=7, noise_floor=0.0)
    assert run_key(machine=nehalem_cluster(nodes=1), **base) != run_key(
        machine=nehalem_cluster(nodes=2), **base
    )
    assert run_key(**base) != run_key(**dict(base, noise_floor=1e-4))


def test_key_field_names_matter():
    assert run_key(p=2, threads=1) != run_key(p=1, threads=2)


def test_unkeyable_input_rejected():
    with pytest.raises(TypeError):
        run_key(config=object())


# -- store ------------------------------------------------------------------


def test_put_get_roundtrip_and_counters(tmp_path):
    cache = RunCache(root=tmp_path)
    key = run_key(p=1, seed=0)
    assert cache.get(key) is None
    cache.put(key, {"x": 1.5})
    assert cache.get(key) == {"x": 1.5}
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = RunCache(root=tmp_path)
    key = run_key(p=1, seed=0)
    cache.put(key, {"x": 1})
    cache.path_for(key).write_text("{not json")
    assert cache.get(key) is None
    assert not cache.path_for(key).exists()


def test_checksum_mismatch_detected_and_evicted(tmp_path, caplog):
    import logging

    cache = RunCache(root=tmp_path)
    key = run_key(p=1, seed=0)
    cache.put(key, {"x": 1})
    path = cache.path_for(key)
    envelope = json.loads(path.read_text())
    envelope["payload"]["x"] = 2  # silent bit rot: payload no longer matches
    path.write_text(json.dumps(envelope))
    with caplog.at_level(logging.WARNING, logger="repro.harness.cache"):
        assert cache.get(key) is None
    assert "checksum mismatch" in caplog.text
    assert cache.corrupt == 1
    assert not path.exists()  # evicted, so the point gets recomputed


def test_missing_envelope_is_corrupt(tmp_path):
    cache = RunCache(root=tmp_path)
    key = run_key(p=1, seed=0)
    cache.put(key, {"x": 1})
    # A pre-envelope (schema v1 style) raw payload is treated as corrupt.
    cache.path_for(key).write_text(json.dumps({"x": 1}))
    assert cache.get(key) is None
    assert cache.corrupt == 1
    assert not cache.path_for(key).exists()


def test_corrupt_entry_recomputed_transparently(tmp_path):
    """End to end: a corrupted point is re-simulated, not trusted."""
    sweep = _sweep(process_counts=(1,), reps=1)
    cache = RunCache(root=tmp_path)
    clean = run_convolution_sweep(sweep, cache=cache)
    victim = next(tmp_path.glob("*/*.json"))
    envelope = json.loads(victim.read_text())
    envelope["checksum"] = "0" * 64
    victim.write_text(json.dumps(envelope))
    fresh_cache = RunCache(root=tmp_path)
    replayed = run_convolution_sweep(sweep, cache=fresh_cache)
    assert fresh_cache.corrupt == 1 and fresh_cache.stores == 1
    assert scaling_to_json(replayed) == scaling_to_json(clean)


def test_stats_reports_corrupt_counter(tmp_path):
    cache = RunCache(root=tmp_path)
    key = run_key(p=1, seed=0)
    cache.put(key, {"x": 1})
    cache.path_for(key).write_text("garbage")
    cache.get(key)
    assert cache.stats()["corrupt"] == 1


def test_clear_and_stats(tmp_path):
    cache = RunCache(root=tmp_path)
    for seed in range(3):
        cache.put(run_key(p=1, seed=seed), {"seed": seed})
    stats = cache.stats()
    assert stats["entries"] == 3 and stats["bytes"] > 0
    assert cache.clear() == 3
    assert cache.stats()["entries"] == 0


def test_default_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    assert default_cache_dir() == tmp_path
    assert maybe_default_cache().root == tmp_path
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert maybe_default_cache() is None


# -- runner replay ----------------------------------------------------------


def test_warm_cache_replays_identical_profile(tmp_path):
    sweep = _sweep()
    cache = RunCache(root=tmp_path)
    uncached = run_convolution_sweep(sweep)
    cold = run_convolution_sweep(sweep, cache=cache)
    assert cache.hits == 0 and cache.stores == 4
    warm = run_convolution_sweep(sweep, cache=cache)
    assert cache.hits == 4 and cache.stores == 4
    assert scaling_to_json(cold) == scaling_to_json(uncached)
    assert scaling_to_json(warm) == scaling_to_json(uncached)


def test_warm_cache_progress_lines_match(tmp_path):
    sweep = _sweep()
    cache = RunCache(root=tmp_path)
    cold_lines, warm_lines = [], []
    run_convolution_sweep(sweep, progress=cold_lines.append, cache=cache)
    run_convolution_sweep(sweep, progress=warm_lines.append, cache=cache)
    assert warm_lines == cold_lines


def test_cache_distinguishes_sweep_variants(tmp_path):
    cache = RunCache(root=tmp_path)
    run_convolution_sweep(_sweep(), cache=cache)
    # A different seed re-simulates every point instead of hitting.
    run_convolution_sweep(_sweep(base_seed=999), cache=cache)
    assert cache.hits == 0 and cache.stores == 8


def test_growing_reps_hits_existing_points(tmp_path):
    cache = RunCache(root=tmp_path)
    run_convolution_sweep(_sweep(reps=1), cache=cache)
    assert cache.stores == 2
    run_convolution_sweep(_sweep(reps=2), cache=cache)
    # The first repetition of each scale replays; only rep 1 simulates.
    assert cache.hits == 2 and cache.stores == 4


def test_lulesh_warm_cache_replay(tmp_path):
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=4, steps=2),
        machine=knl_node(jitter=0.0),
        grid={1: (1, 2)},
        reps=1,
    )
    cache = RunCache(root=tmp_path)
    a_cold, d_cold = run_lulesh_grid(sweep, cache=cache)
    a_warm, d_warm = run_lulesh_grid(sweep, cache=cache)
    assert cache.hits == 2
    assert d_warm == d_cold
    for p in a_cold.process_counts():
        for t in a_cold.thread_counts(p):
            assert [r.walltime for r in a_warm.runs(p, t)] == [
                r.walltime for r in a_cold.runs(p, t)
            ]


def test_runner_uses_env_cache_by_default(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
    sweep = _sweep(process_counts=(1,), reps=1)
    run_convolution_sweep(sweep)
    stored = list(tmp_path.glob("*/*.json"))
    assert len(stored) == 1
    envelope = json.loads(stored[0].read_text())
    assert "checksum" in envelope
    payload = envelope["payload"]
    assert "profile" in payload and "msg" in payload
