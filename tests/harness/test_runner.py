"""Sweep runners over tiny configurations."""

import pytest

from repro.harness.runner import run_convolution_sweep, run_lulesh_grid
from repro.harness.sweeps import ConvolutionSweep, LuleshGridSweep
from repro.machine.catalog import knl_node, nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig
from repro.workloads.lulesh import LuleshConfig


@pytest.fixture(scope="module")
def conv_profile():
    sweep = ConvolutionSweep(
        config=ConvolutionConfig.tiny(steps=4),
        machine=nehalem_cluster(nodes=1, jitter=0.0),
        process_counts=(1, 2, 4),
        reps=2,
        noise_floor=0.0,
        compute_jitter=0.0,
    )
    return run_convolution_sweep(sweep)


def test_convolution_sweep_structure(conv_profile):
    assert conv_profile.scales() == [1, 2, 4]
    assert conv_profile.reps(2) == 2
    assert "HALO" in conv_profile.labels()


def test_convolution_sweep_progress_callback():
    lines = []
    sweep = ConvolutionSweep(
        config=ConvolutionConfig.tiny(steps=2),
        machine=nehalem_cluster(nodes=1, jitter=0.0),
        process_counts=(1,),
        reps=1,
    )
    run_convolution_sweep(sweep, progress=lines.append)
    assert len(lines) == 1 and "p=1" in lines[0]


def test_convolution_sweep_seeds_distinct_per_rep(conv_profile):
    seeds = [r.seed for r in conv_profile.runs(2)]
    assert len(set(seeds)) == len(seeds)


def test_convolution_seed_collision_raises():
    # Repetitions beyond the 1000-seed stride walk p=1's seeds into the
    # p=2 block: base + 1000*1 + 1000 == base + 1000*2 + 0.
    sweep = ConvolutionSweep(
        config=ConvolutionConfig.tiny(steps=2),
        machine=nehalem_cluster(nodes=1, jitter=0.0),
        process_counts=(1, 2),
        reps=1001,
    )
    with pytest.raises(ValueError, match="seed collision"):
        run_convolution_sweep(sweep)


def test_lulesh_seed_collision_raises():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=4, steps=2),
        machine=knl_node(jitter=0.0),
        grid={1: (1, 2)},
        reps=1001,
    )
    with pytest.raises(ValueError, match="seed collision"):
        run_lulesh_grid(sweep)


def test_lulesh_grid_runner():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=8, steps=2),
        machine=knl_node(jitter=0.0),
        grid={1: (1, 2), 8: (1,)},
        reps=1,
    )
    analysis, drifts = run_lulesh_grid(sweep)
    assert analysis.process_counts() == [1, 8]
    assert analysis.thread_counts(1) == [1, 2]
    assert set(drifts) == {(1, 1), (1, 2), (8, 1)}
    assert max(drifts.values()) < 1e-10


def test_lulesh_grid_scales_sides_to_hold_elements():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=8, steps=1),
        machine=knl_node(jitter=0.0),
        grid={8: (1,)},
        reps=1,
    )
    analysis, _ = run_lulesh_grid(sweep)
    prof = analysis.runs(8, 1)[0]
    # s=8 at p=1 → s=4 at p=8 (8 * 4^3 = 512 = 8^3): same global mesh
    assert prof.n_ranks == 8


def test_lulesh_grid_explicit_sides():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=8, steps=1),
        machine=knl_node(jitter=0.0),
        grid={8: (1,)},
        reps=1,
    )
    analysis, _ = run_lulesh_grid(sweep, sides={8: 3})
    assert analysis.runs(8, 1)[0].n_ranks == 8


def test_weak_scaling_sweep_grows_problem():
    from repro.harness.sweeps import ConvolutionSweep
    from repro.workloads.convolution import ConvolutionConfig
    from repro.machine.catalog import nehalem_cluster

    sweep = ConvolutionSweep(
        config=ConvolutionConfig(height=12, width=16, steps=3),
        machine=nehalem_cluster(nodes=1, jitter=0.0),
        process_counts=(1, 2, 4),
        reps=1,
        weak=True,
        compute_jitter=0.0,
        noise_floor=0.0,
    )
    assert sweep.config_for(4).height == 48
    prof = run_convolution_sweep(sweep)
    # Weak scaling: per-process CONVOLVE time stays ~constant while the
    # global problem quadruples (Gustafson's configuration).
    t1 = prof.mean_avg_per_process("CONVOLVE", 1)
    t4 = prof.mean_avg_per_process("CONVOLVE", 4)
    assert t4 == pytest.approx(t1, rel=0.10)
    # ... whereas under strong scaling it would have dropped ~4x.


def test_weak_scaling_efficiency_stays_high():
    from repro.harness.sweeps import ConvolutionSweep
    from repro.workloads.convolution import ConvolutionConfig
    from repro.machine.catalog import nehalem_cluster

    sweep = ConvolutionSweep(
        config=ConvolutionConfig(height=24, width=64, steps=10),
        machine=nehalem_cluster(nodes=1, jitter=0.0),
        process_counts=(1, 8),
        reps=1,
        weak=True,
        compute_jitter=0.0,
        noise_floor=0.0,
    )
    prof = run_convolution_sweep(sweep)
    # Gustafson: walltime at p=8 on an 8x problem stays within ~40% of
    # the p=1 walltime (scaled speedup >> Amdahl's strong-scaling S).
    assert prof.mean_walltime(8) < 1.4 * prof.mean_walltime(1)
