"""run_scenario semantics: seeding, bit-identity, fail-soft, metrics.

The scenario runner must be an exact generalisation of the hand-wired
sweeps: the same per-point seeding contract, profiles bit-identical to
driving the plugin by hand, crashes either raised loudly or skipped
into the failure report (and never cached), metrics averaged over reps.
"""

from __future__ import annotations

import pytest

from repro.core.profile import SectionProfile
from repro.errors import RankFailedError
from repro.harness.cache import RunCache
from repro.harness.scenario import run_scenario
from repro.scenarios import ScenarioSpec

BASE = {
    "workload": "taskfarm",
    "params": {"ntasks": 24, "task_flops": 1e5},
    "machine": {"name": "laptop", "cores": 4},
    "process_counts": [2, 4],
    "reps": 2,
    "base_seed": 7,
}

CRASH = {"seed": 1, "faults": [{"kind": "crash", "rank": 1, "at_time": 0.0}]}


def _spec(**overrides):
    return ScenarioSpec.from_dict({**BASE, **overrides})


def test_profile_bit_identical_to_manual_plugin_loop():
    spec = _spec()
    profile, metrics, intervals = run_scenario(spec, cache=None)
    plugin = spec.plugin()
    assert set(intervals) == set(spec.process_counts)
    assert all(len(recs) == spec.reps for recs in intervals.values())
    for p in spec.process_counts:
        runs = profile.runs(p)
        assert len(runs) == spec.reps
        want_metrics = {}
        for rep in range(spec.reps):
            seed = spec.base_seed + 1000 * p + rep
            res = plugin.run(p, machine=spec.machine_spec(), seed=seed)
            manual = SectionProfile.from_run(res, p=p, threads=spec.threads)
            assert runs[rep].breakdown(include_main=True) == \
                manual.breakdown(include_main=True)
            # Engine diagnostics ride along with the plugin metrics.
            expected = {
                **plugin.metrics(res),
                "sched_steps": float(res.sched_steps),
                "rounds_captured": float(res.rounds_captured),
                "rounds_replayed": float(res.rounds_replayed),
                "deopts": float(res.deopts),
            }
            for name, value in expected.items():
                want_metrics[name] = (
                    want_metrics.get(name, 0.0) + value / spec.reps)
            assert metrics[p] == pytest.approx(want_metrics) or rep == 0
        assert metrics[p] == pytest.approx(want_metrics)


def test_crash_fault_raises_by_default():
    with pytest.raises(RankFailedError):
        run_scenario(_spec(faults=CRASH), cache=None)


def test_crash_fault_skips_into_failure_report(tmp_path):
    cache = RunCache(tmp_path / "cache")
    seen = []
    profile, metrics, intervals = run_scenario(
        _spec(faults=CRASH), progress=seen.append,
        cache=cache, on_error="skip")
    n_points = len(BASE["process_counts"]) * BASE["reps"]
    assert len(profile.failures) == n_points
    assert all(f.error_type == "RankFailedError" for f in profile.failures)
    assert cache.stores == 0               # failed points never cache
    assert profile.scales() == []
    assert metrics == {}
    assert intervals == {}
    assert sum("FAILED" in line for line in seen) == n_points


def test_unknown_on_error_mode_is_rejected():
    with pytest.raises(Exception, match="on_error"):
        run_scenario(_spec(), cache=None, on_error="shrug")


def test_progress_lines_name_workload_and_point():
    seen = []
    run_scenario(_spec(reps=1, process_counts=[2]),
                 progress=seen.append, cache=None)
    assert len(seen) == 1
    assert seen[0].startswith("taskfarm p=2 rep=0:")
