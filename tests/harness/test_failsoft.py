"""Fail-soft sweeps: skipped points, retries, worker death, reporting."""

import os

import pytest

from repro.core.export import scaling_to_json
from repro.errors import RankFailedError
from repro.faults import FaultPlan, RankCrash
from repro.harness.cache import RunCache
from repro.harness.failures import (
    PointFailure,
    SweepFailureReport,
    SweepPointError,
)
from repro.harness.parallel import map_points_failsoft
from repro.harness.runner import run_convolution_sweep, run_lulesh_grid
from repro.harness.sweeps import ConvolutionSweep, LuleshGridSweep
from repro.machine.catalog import knl_node, nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig
from repro.workloads.lulesh import LuleshConfig

CRASH_P4 = FaultPlan((RankCrash(rank=3, at_time=0.0),))


def _sweep(**overrides):
    kwargs = dict(
        config=ConvolutionConfig.tiny(steps=3),
        machine=nehalem_cluster(nodes=1),
        process_counts=(1, 2, 4),
        reps=1,
    )
    kwargs.update(overrides)
    return ConvolutionSweep(**kwargs)


# -- map_points_failsoft -----------------------------------------------------


def _square(x):
    return x * x


def _explode_on_two(x):
    if x == 2:
        raise ValueError(f"bad point {x}")
    return x * x


def _die_on_two(x):
    if x == 2:
        os._exit(13)  # simulated segfault: the worker process vanishes
    return x * x


@pytest.mark.parametrize("jobs", [1, 2])
def test_failed_points_become_outcomes(jobs):
    outs = list(map_points_failsoft(_explode_on_two, [1, 2, 3], jobs))
    assert [o.ok for o in outs] == [True, False, True]
    assert [o.value for o in outs if o.ok] == [1, 9]
    bad = outs[1]
    assert bad.error_type == "ValueError"
    assert "bad point 2" in bad.message
    assert isinstance(bad.error, ValueError)
    assert "ValueError" in bad.traceback
    assert not bad.worker_died


def test_worker_death_attributed_to_the_dying_point():
    outs = list(map_points_failsoft(_die_on_two, [1, 2, 3], jobs=2))
    assert [o.ok for o in outs] == [True, False, True]
    assert outs[1].worker_died
    assert outs[1].error_type == "WorkerCrash"
    assert [o.value for o in outs if o.ok] == [1, 9]


_FLAKY_DIR_KEY = "flaky_dir"


def _fail_once(task):
    """Fails on its first invocation per marker directory, then succeeds."""
    marker = os.path.join(task[_FLAKY_DIR_KEY], "tried")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("transient")
    return "recovered"


def test_retries_recover_transient_failures(tmp_path):
    task = {_FLAKY_DIR_KEY: str(tmp_path)}
    (out,) = map_points_failsoft(_fail_once, [task], jobs=1, retries=1)
    assert out.ok and out.value == "recovered"
    assert out.attempts == 2


def test_retries_exhausted_reports_attempts(tmp_path):
    def always(task):
        raise RuntimeError("permanent")

    (out,) = map_points_failsoft(always, [0], jobs=1, retries=2)
    assert not out.ok
    assert out.attempts == 3


def test_invalid_retry_parameters_rejected():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        list(map_points_failsoft(_square, [1], jobs=1, retries=-1))
    with pytest.raises(ReproError):
        list(map_points_failsoft(_square, [1], jobs=1, retry_backoff=-0.5))


# -- failure report ----------------------------------------------------------


def test_failure_report_summary_table():
    report = SweepFailureReport()
    assert not report and len(report) == 0
    assert report.summary() == "no failed points"
    report.add(PointFailure("convolution p=4 rep=0", "ValueError", "boom"))
    report.add(PointFailure("convolution p=8 rep=1", "WorkerCrash",
                            "worker process died", worker_died=True))
    assert report and len(report) == 2
    text = report.summary()
    assert "2 failed point(s)" in text
    assert "convolution p=4 rep=0" in text
    assert "worker died" in text


# -- convolution sweep -------------------------------------------------------


def test_skip_mode_completes_and_reports_the_crashed_point():
    sweep = _sweep(faults=CRASH_P4)
    profile = run_convolution_sweep(sweep, on_error="skip")
    # p=1 and p=2 survive (the rank-3 crash is out of range there).
    assert profile.scales() == [1, 2]
    assert len(profile.failures) == 1
    failure = profile.failures.failures[0]
    assert failure.label == "convolution p=4 rep=0"
    assert failure.error_type == "RankFailedError"


def test_skip_mode_never_caches_failed_points(tmp_path):
    cache = RunCache(root=tmp_path)
    run_convolution_sweep(_sweep(faults=CRASH_P4), on_error="skip",
                          cache=cache)
    assert cache.stores == 2  # p=1 and p=2 only; the crashed point is absent
    # A warm re-run replays the successes and re-attempts only the crash.
    profile = run_convolution_sweep(_sweep(faults=CRASH_P4), on_error="skip",
                                    cache=cache)
    assert cache.hits == 2 and cache.stores == 2
    assert len(profile.failures) == 1


def test_raise_mode_reraises_the_original_error():
    with pytest.raises(RankFailedError):
        run_convolution_sweep(_sweep(faults=CRASH_P4), on_error="raise")


def test_skip_results_identical_serial_and_parallel():
    serial = run_convolution_sweep(_sweep(faults=CRASH_P4), on_error="skip")
    parallel = run_convolution_sweep(_sweep(faults=CRASH_P4), on_error="skip",
                                     jobs=2)
    assert scaling_to_json(parallel) == scaling_to_json(serial)
    assert len(parallel.failures) == len(serial.failures) == 1


def test_clean_sweep_has_empty_failure_report():
    profile = run_convolution_sweep(_sweep(), on_error="skip")
    assert profile.failures is not None and not profile.failures


def test_progress_lines_mark_failed_points():
    lines = []
    run_convolution_sweep(_sweep(faults=CRASH_P4), on_error="skip",
                          progress=lines.append)
    failed = [ln for ln in lines if "FAILED" in ln]
    assert len(failed) == 1
    assert "p=4" in failed[0] and "RankFailedError" in failed[0]


def test_unknown_on_error_rejected():
    with pytest.raises(ValueError):
        run_convolution_sweep(_sweep(), on_error="ignore")


# -- lulesh grid -------------------------------------------------------------


def test_lulesh_skip_mode_reports_and_continues():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=4, steps=2),
        machine=knl_node(jitter=0.0),
        grid={1: (1, 2), 8: (1,)},
        reps=1,
        faults=FaultPlan((RankCrash(rank=1, at_time=0.0),)),
    )
    analysis, drifts = run_lulesh_grid(sweep, on_error="skip")
    # Only the p=8 point sees rank 1 and dies.
    assert analysis.process_counts() == [1]
    assert len(analysis.failures) == 1
    assert analysis.failures.failures[0].label == "lulesh p=8 t=1 rep=0"
    assert (8, 1) not in drifts
