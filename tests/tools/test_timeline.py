"""ASCII timeline rendering."""

import pytest

from repro.errors import AnalysisError
from repro.simmpi.sections_rt import section
from repro.tools import TraceTool
from repro.tools.timeline import render_coarse_lane, render_timeline

from tests.conftest import mpi


def _phased(ctx):
    with section(ctx, "alpha"):
        ctx.compute(0.4)
    with section(ctx, "beta"):
        ctx.compute(0.6)
    ctx.comm.barrier()


@pytest.fixture(scope="module")
def run_result():
    return mpi(3, _phased)


def test_timeline_one_lane_per_rank(run_result):
    text = render_timeline(run_result.section_events, width=40)
    lanes = [l for l in text.splitlines() if l.startswith("rank")]
    assert len(lanes) == 3
    assert all(len(l.split("|")[1]) == 40 for l in lanes)


def test_timeline_proportions(run_result):
    text = render_timeline(run_result.section_events, width=50)
    lane0 = text.splitlines()[1].split("|")[1]
    # alpha occupies ~40% of the run, beta ~60%
    assert 15 <= lane0.count("#") <= 25
    assert 25 <= lane0.count("*") <= 35


def test_timeline_legend_lists_labels(run_result):
    text = render_timeline(run_result.section_events)
    assert "=alpha" in text and "=beta" in text


def test_timeline_depth_zero_shows_main(run_result):
    text = render_timeline(run_result.section_events, depth=0)
    assert "=MPI_MAIN" in text


def test_timeline_short_sections_visible():
    def main(ctx):
        with section(ctx, "blink"):
            ctx.compute(1e-9)
        with section(ctx, "bulk"):
            ctx.compute(1.0)

    res = mpi(1, main)
    text = render_timeline(res.section_events, width=30)
    lane = text.splitlines()[1].split("|")[1]
    assert "#" in lane  # the 1 ns section still gets one column


def test_timeline_validation(run_result):
    with pytest.raises(AnalysisError):
        render_timeline(run_result.section_events, width=5)
    assert render_timeline([], width=40) == "(no sections at this depth)"


def test_coarse_lane_from_trace_tool(run_result):
    # (re-run with a tool attached to get merged instances)
    tool = TraceTool()
    mpi(3, _phased, tools=[tool])
    insts = [i for i in tool.coarse_view() if i.label != "MPI_MAIN"]
    text = render_coarse_lane(insts, width=40)
    assert text.startswith("coarse view")
    lane = text.splitlines()[1].split("|")[1]
    assert len(lane) == 40
    assert "#" in lane and "*" in lane


def test_coarse_lane_empty():
    assert render_coarse_lane([]) == "(no instances)"
