"""The online section profiler tool (blob-based timing)."""

import pytest

from repro.errors import AnalysisError
from repro.core.profile import SectionProfile
from repro.simmpi.sections_rt import section
from repro.tools import SectionProfilerTool

from tests.conftest import mpi


def _workload(ctx):
    with section(ctx, "a"):
        ctx.compute(1.0)
    for _ in range(2):
        with section(ctx, "b"):
            ctx.compute(0.25)


def test_profiler_times_from_blob():
    tool = SectionProfilerTool()
    mpi(2, _workload, tools=[tool])
    assert tool.rank_total(0, "a") == pytest.approx(1.0)
    assert tool.rank_total(1, "b") == pytest.approx(0.5)
    assert tool.total("a") == pytest.approx(2.0)
    assert tool.avg_per_process("b") == pytest.approx(0.5)


def test_profiler_counts_instances():
    tool = SectionProfilerTool()
    mpi(3, _workload, tools=[tool])
    assert tool.counts[(0, "b")] == 2
    assert set(tool.labels()) == {"MPI_MAIN", "a", "b"}


def test_profiler_balanced_after_run():
    tool = SectionProfilerTool()
    mpi(2, _workload, tools=[tool])
    tool.assert_balanced()


def test_profiler_detects_imbalance():
    tool = SectionProfilerTool()
    tool.section_enter_cb(("w",), "x", bytearray(32), 0, 0.0)
    with pytest.raises(AnalysisError):
        tool.assert_balanced()


def test_profiler_rejects_corrupted_blob():
    tool = SectionProfilerTool()
    with pytest.raises(AnalysisError, match="not.*preserved"):
        tool.section_leave_cb(("w",), "x", bytearray(32), 0, 1.0)


def test_profiler_no_ranks_avg_raises():
    with pytest.raises(AnalysisError):
        SectionProfilerTool().avg_per_process("a")


def test_profiler_cross_validates_with_event_stream():
    """A tool seeing only the two Figure 2 callbacks reconstructs the
    same per-label totals as post-hoc analysis of the event stream."""
    tool = SectionProfilerTool()
    res = mpi(4, _workload, tools=[tool])
    prof = SectionProfile.from_run(res)
    for label in ("a", "b", "MPI_MAIN"):
        assert tool.total(label) == pytest.approx(prof.total(label), rel=1e-12)
