"""Trace tool: recording, filtering, coarse-grain instance merge."""

import pytest

from repro.simmpi.sections_rt import section
from repro.tools import TraceTool

from tests.conftest import mpi


def _phased(ctx):
    ctx.compute(0.01 * ctx.rank)
    with section(ctx, "phase1"):
        ctx.compute(0.5)
    with section(ctx, "phase2"):
        ctx.compute(0.2)


def test_trace_records_all_events():
    tool = TraceTool()
    mpi(2, _phased, tools=[tool])
    # 3 sections (MAIN, phase1, phase2) × enter+exit × 2 ranks
    assert len(tool) == 12


def test_trace_per_rank_is_ordered():
    tool = TraceTool()
    mpi(3, _phased, tools=[tool])
    recs = tool.per_rank(1)
    assert all(r.rank == 1 for r in recs)
    times = [r.time for r in recs]
    assert times == sorted(times)


def test_trace_timeline_sorted_globally():
    tool = TraceTool()
    mpi(3, _phased, tools=[tool])
    times = [r.time for r in tool.timeline()]
    assert times == sorted(times)


def test_label_filter_drops_events():
    tool = TraceTool(label_filter=lambda lab: lab == "phase1")
    mpi(2, _phased, tools=[tool])
    labels = {r.label for r in tool.records}
    assert labels == {"phase1"}
    assert len(tool) == 4


def test_coarse_view_builds_cross_rank_instances():
    tool = TraceTool()
    mpi(3, _phased, tools=[tool])
    insts = tool.coarse_view()
    by_label = {i.label for i in insts}
    assert by_label == {"MPI_MAIN", "phase1", "phase2"}
    p1 = next(i for i in insts if i.label == "phase1")
    assert len(p1.t_in) == 3
    # staggered entries produce positive entry imbalance
    assert p1.entry_imbalance_mean > 0


def test_coarse_view_ordered_by_first_entry():
    tool = TraceTool()
    mpi(2, _phased, tools=[tool])
    insts = tool.coarse_view()
    starts = [min(i.t_in.values()) for i in insts]
    assert starts == sorted(starts)


def test_coarse_view_repeated_sections_distinct_instances():
    def main(ctx):
        for _ in range(3):
            with section(ctx, "loop"):
                ctx.compute(0.1)

    tool = TraceTool()
    mpi(2, main, tools=[tool])
    loops = [i for i in tool.coarse_view() if i.label == "loop"]
    assert len(loops) == 3
    assert sorted(i.occurrence for i in loops) == [0, 1, 2]


def test_filtered_coarse_view_skips_unmatchable():
    tool = TraceTool(label_filter=lambda lab: lab != "MPI_MAIN")
    mpi(2, _phased, tools=[tool])
    insts = tool.coarse_view()
    assert {i.label for i in insts} == {"phase1", "phase2"}
