"""Per-section communication matrix tool."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.machine.catalog import nehalem_cluster
from repro.simmpi.sections_rt import section
from repro.tools.comm_matrix import CommMatrixTool, _human
from repro.workloads.convolution import ConvolutionBenchmark, ConvolutionConfig

from tests.conftest import mpi


def _app(ctx):
    comm = ctx.comm
    with section(ctx, "ringshift"):
        comm.sendrecv(b"x" * 100, dest=(comm.rank + 1) % comm.size,
                      source=(comm.rank - 1) % comm.size)
    with section(ctx, "funnel"):
        if comm.rank != 0:
            comm.send(b"y" * 50, dest=0)
        else:
            for _ in range(comm.size - 1):
                comm.recv()


@pytest.fixture(scope="module")
def matrix_tool():
    tool = CommMatrixTool()
    mpi(4, _app, tools=[tool])
    return tool


def test_labels_sorted_by_bytes(matrix_tool):
    labels = matrix_tool.labels()
    assert labels[0] == "ringshift"  # 4 x 100 B > 3 x 50 B
    assert set(labels) == {"ringshift", "funnel"}


def test_matrix_structure_ring(matrix_tool):
    mat = matrix_tool.matrix("ringshift")
    for src in range(4):
        assert mat[src, (src + 1) % 4] == 100
    assert mat.sum() == 400


def test_matrix_structure_funnel(matrix_tool):
    mat = matrix_tool.matrix("funnel")
    assert mat[:, 0].sum() == 150
    assert mat[0].sum() == 0  # root sends nothing


def test_hotspot(matrix_tool):
    src, dst, nbytes = matrix_tool.hotspot("ringshift")
    assert nbytes == 100 and dst == (src + 1) % 4


def test_section_totals(matrix_tool):
    totals = {r["section"]: r for r in matrix_tool.section_totals()}
    assert totals["ringshift"]["messages"] == 4
    assert totals["funnel"]["messages"] == 3
    assert totals["funnel"]["bytes"] == 150


def test_unknown_label_raises(matrix_tool):
    with pytest.raises(AnalysisError):
        matrix_tool.matrix("nope")


def test_render_contains_counts(matrix_tool):
    text = matrix_tool.render("ringshift")
    assert "[ringshift] bytes sent" in text
    assert "100" in text


def test_human_formatting():
    assert _human(0) == "0"
    assert _human(999) == "999"
    assert _human(12_000) == "12K"
    assert _human(3_400_000) == "3.4M"
    assert _human(2 * 10**9) == "2.0G"


def test_on_recv_hook_dispatched():
    from repro.simmpi.pmpi import Tool

    class RecvSpy(Tool):
        def __init__(self):
            self.recvs = []

        def on_recv(self, rank, source, nbytes, tag, t):
            self.recvs.append((rank, source, nbytes))

    spy = RecvSpy()

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"z" * 64, dest=1, tag=2)
        else:
            ctx.comm.recv(source=0, tag=2)

    mpi(2, main, tools=[spy])
    assert spy.recvs == [(1, 0, 64)]


def test_convolution_traffic_attribution():
    """On the real benchmark, HALO traffic is neighbour-to-neighbour and
    SCATTER/GATHER traffic is rooted at rank 0."""
    tool = CommMatrixTool()
    bench = ConvolutionBenchmark(ConvolutionConfig.tiny(steps=3))
    bench.run(4, machine=nehalem_cluster(nodes=1, jitter=0.0), tools=[tool])

    halo = tool.matrix("HALO")
    assert halo[1, 2] > 0 and halo[2, 1] > 0
    assert halo[0, 3] == 0 and halo[3, 0] == 0  # no wraparound in 1-D split

    scatter = tool.matrix("SCATTER")
    assert scatter[0].sum() > 0
    assert scatter[1:, :].sum() == 0  # only the root scatters

    gather = tool.matrix("GATHER")
    assert gather[:, 0].sum() > 0
