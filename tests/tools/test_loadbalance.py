"""Load-balance analysis over Figure 3 metrics."""

import pytest

from repro.core.metrics import SectionInstanceTiming
from repro.errors import InsufficientDataError
from repro.simmpi.sections_rt import section
from repro.tools import TraceTool, analyze_load_balance

from tests.conftest import mpi


def _inst(label, t_in, t_out, occ=0):
    inst = SectionInstanceTiming(label, ("w",), occ)
    inst.t_in = dict(t_in)
    inst.t_out = dict(t_out)
    return inst


def test_balanced_section_reports_zero_waste():
    inst = _inst("even", {0: 0.0, 1: 0.0}, {0: 1.0, 1: 1.0})
    rep = analyze_load_balance([inst])[0]
    assert rep.mean_imbalance == pytest.approx(0.0)
    assert rep.wasted_time == pytest.approx(0.0)
    assert rep.balance_ratio == pytest.approx(1.0)


def test_imbalanced_section_quantified():
    inst = _inst("skew", {0: 0.0, 1: 0.0}, {0: 1.0, 1: 3.0})
    rep = analyze_load_balance([inst])[0]
    # span 3, mean Tsection 2 → imbalance 1
    assert rep.mean_imbalance == pytest.approx(1.0)
    assert rep.balance_ratio == pytest.approx(1 - 1 / 3)


def test_entry_imbalance_tracked():
    inst = _inst("late", {0: 0.0, 1: 2.0}, {0: 3.0, 1: 3.0})
    rep = analyze_load_balance([inst])[0]
    assert rep.mean_entry_imbalance == pytest.approx(1.0)
    assert rep.max_entry_imbalance == pytest.approx(2.0)


def test_reports_sorted_by_wasted_time():
    bad = _inst("bad", {0: 0.0, 1: 0.0}, {0: 1.0, 1: 9.0})
    good = _inst("good", {0: 0.0, 1: 0.0}, {0: 1.0, 1: 1.1})
    reps = analyze_load_balance([good, bad])
    assert [r.label for r in reps] == ["bad", "good"]


def test_multiple_instances_aggregated():
    insts = [
        _inst("s", {0: 0.0, 1: 0.0}, {0: 1.0, 1: 2.0}, occ=0),
        _inst("s", {0: 10.0, 1: 10.0}, {0: 11.0, 1: 14.0}, occ=1),
    ]
    rep = analyze_load_balance(insts)[0]
    assert rep.instances == 2
    assert rep.wasted_time == pytest.approx(0.5 + 1.5)


def test_empty_input_raises():
    with pytest.raises(InsufficientDataError):
        analyze_load_balance([])


def test_end_to_end_detects_imbalanced_phase():
    """Rank-dependent work inside a section shows up as wasted time."""

    def main(ctx):
        with section(ctx, "balanced"):
            ctx.compute(1.0)
        ctx.comm.barrier()
        with section(ctx, "imbalanced"):
            ctx.compute(1.0 + ctx.rank)
        ctx.comm.barrier()

    tool = TraceTool()
    mpi(4, main, tools=[tool])
    reports = {r.label: r for r in analyze_load_balance(tool.coarse_view())}
    assert reports["imbalanced"].wasted_time > reports["balanced"].wasted_time
    assert reports["imbalanced"].mean_imbalance > 1.0
