"""Adaptive parallelism restriction advisor (Section 8 future work)."""

import pytest

from repro.errors import AnalysisError, InsufficientDataError
from repro.tools import AdaptiveAdvisor


def _curves():
    ts = [1, 2, 4, 8, 16, 32]
    return {
        # keeps scaling over the whole range
        "scales": (ts, [32.0, 16.0, 8.0, 4.0, 2.0, 1.0]),
        # exhausted at 8 threads, then regresses
        "exhausted": (ts, [16.0, 8.0, 4.0, 3.0, 4.5, 7.0]),
    }


def test_plan_finds_best_thread_counts():
    plans = {p.label: p for p in AdaptiveAdvisor(_curves()).plan(uniform_threads=32)}
    assert plans["scales"].best_threads == 32
    assert plans["exhausted"].best_threads == 8
    assert plans["exhausted"].over_parallelised
    assert not plans["scales"].over_parallelised


def test_gain_only_from_restrainable_sections():
    plans = {p.label: p for p in AdaptiveAdvisor(_curves()).plan(32)}
    assert plans["scales"].gain == pytest.approx(0.0)
    assert plans["exhausted"].gain == pytest.approx(7.0 - 3.0)


def test_plans_sorted_by_gain():
    plans = AdaptiveAdvisor(_curves()).plan(32)
    assert plans[0].label == "exhausted"


def test_predicted_walltimes():
    adv = AdaptiveAdvisor(_curves())
    plans = adv.plan(32)
    assert adv.uniform_walltime(plans) == pytest.approx(1.0 + 7.0)
    assert adv.predicted_walltime(plans) == pytest.approx(1.0 + 3.0)
    assert adv.predicted_gain(32) == pytest.approx(4.0 / 8.0)


def test_no_gain_when_uniform_is_optimal():
    adv = AdaptiveAdvisor(
        {"only": ([1, 2, 4, 8], [8.0, 4.0, 2.0, 3.0])}
    )
    assert adv.predicted_gain(4) == pytest.approx(0.0, abs=1e-12)


def test_advisor_can_recommend_more_threads_than_uniform():
    """Restraining is per-section: a section still scaling may be given
    a *larger* team than the uniform baseline."""
    plans = {p.label: p for p in AdaptiveAdvisor(_curves()).plan(8)}
    assert plans["scales"].best_threads == 32
    assert plans["scales"].gain == pytest.approx(4.0 - 1.0)


def test_unsampled_uniform_raises():
    with pytest.raises(AnalysisError):
        AdaptiveAdvisor(_curves()).plan(uniform_threads=5)


def test_insufficient_curves_rejected():
    with pytest.raises(InsufficientDataError):
        AdaptiveAdvisor({})
    with pytest.raises(InsufficientDataError):
        AdaptiveAdvisor({"x": ([1], [1.0])})
