"""Run and scaling report generation."""

import pytest

from repro.core.profile import ScalingProfile, SectionProfile
from repro.simmpi.sections_rt import section
from repro.tools.reportgen import run_report, scaling_report

from tests.conftest import mpi


def _workload(ctx):
    with section(ctx, "compute"):
        ctx.compute(1.0 / ctx.size)
    with section(ctx, "serial"):
        if ctx.rank == 0:
            ctx.compute(0.05)
        ctx.comm.barrier()


@pytest.fixture(scope="module")
def run_result():
    return mpi(4, _workload)


@pytest.fixture(scope="module")
def sweep_profile():
    prof = ScalingProfile("p")
    for p in (1, 2, 4, 8):
        def main(ctx, p=p):
            with section(ctx, "compute"):
                ctx.compute(1.0 / ctx.size)
            with section(ctx, "serial"):
                if ctx.rank == 0:
                    ctx.compute(0.05)
                ctx.comm.barrier()

        prof.add(p, SectionProfile.from_run(mpi(p, main)))
    return prof


def test_run_report_contains_sections_and_traffic(run_result):
    text = run_report(run_result)
    assert "section breakdown" in text
    assert "compute" in text and "serial" in text
    assert "load balance" in text
    assert "traffic:" in text
    assert "4 ranks" in text


def test_run_report_orders_by_exclusive_time(run_result):
    text = run_report(run_result)
    lines = [l for l in text.splitlines() if l.strip().startswith(("compute", "serial"))]
    assert lines[0].strip().startswith("compute")


def test_scaling_report_contains_analyses(sweep_profile):
    text = scaling_report(sweep_profile, bound_labels=["serial"])
    assert "measured speedup" in text
    assert "binding section" in text
    assert "Karp-Flatt" in text
    assert "Amdahl fit" in text
    assert "USL fit" in text


def test_scaling_report_binding_is_serial(sweep_profile):
    text = scaling_report(sweep_profile)
    # the serial phase must surface as the binding section at p=8
    block = text.split("binding section")[1]
    assert "serial" in block


def test_scaling_report_without_bound_labels(sweep_profile):
    text = scaling_report(sweep_profile)
    assert "measured speedup" in text
