"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.machine.catalog import laptop, nehalem_cluster
from repro.simmpi.engine import run_mpi


@pytest.fixture
def small_cluster():
    """A small multi-node machine (Nehalem-style, 4 nodes x 8 cores)."""
    return nehalem_cluster(nodes=4, jitter=0.0)


@pytest.fixture
def one_node():
    """A deterministic single node with 8 cores."""
    return laptop(cores=8)


def mpi(n_ranks, main, **kwargs):
    """Run ``main`` on ``n_ranks`` simulated ranks with quiet defaults.

    Unless overridden, uses a machine wide enough for the rank count and
    zero noise so assertions on virtual times are exact.
    """
    kwargs.setdefault("machine", laptop(cores=max(2, n_ranks)))
    kwargs.setdefault("seed", 0)
    return run_mpi(n_ranks, main, **kwargs)
