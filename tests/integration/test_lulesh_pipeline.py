"""End-to-end Lulesh pipeline: grid → hybrid analysis → inflexion/bounds."""

import pytest

from repro.harness.runner import run_lulesh_grid
from repro.harness.sweeps import LuleshGridSweep
from repro.machine.catalog import knl_node
from repro.tools import AdaptiveAdvisor
from repro.workloads.lulesh import LuleshConfig


@pytest.fixture(scope="module")
def knl_grid():
    sweep = LuleshGridSweep(
        config=LuleshConfig(s=24, steps=4),
        machine=knl_node(jitter=0.0),
        grid={1: (1, 2, 4, 8, 16, 24, 32, 64, 128), 8: (1, 2, 4, 8)},
        reps=1,
        compute_jitter=0.0,
    )
    return run_lulesh_grid(sweep)


def test_energy_conserved_everywhere(knl_grid):
    _, drifts = knl_grid
    assert max(drifts.values()) < 1e-12


def test_omp_speedup_then_regression(knl_grid):
    analysis, _ = knl_grid
    ts, walls = analysis.walltime_series(1)
    assert walls[ts.index(8)] < walls[0] / 3
    assert walls[ts.index(128)] > min(walls) * 1.5


def test_elements_inflexion_exists_and_bounds_hold(knl_grid):
    analysis, _ = knl_grid
    out = analysis.bound_at_inflexion("LagrangeElements", 1)
    assert out is not None
    pt, bound = out
    assert pt.exhausted
    measured = analysis.speedup(1, pt.p)
    assert measured <= bound * 1.02


def test_two_phase_bound_tracks_measured(knl_grid):
    analysis, _ = knl_grid
    for t in (4, 8, 16):
        measured = analysis.speedup(1, t)
        bound = analysis.bound_from_sections(
            ["LagrangeNodal", "LagrangeElements"], 1, t
        )
        assert measured <= bound * 1.02
        assert bound <= measured * 1.6  # phases dominate → bound is tight


def test_mpi_parallelism_beats_omp_at_same_degree(knl_grid):
    analysis, _ = knl_grid
    assert analysis.mean_walltime(8, 1) < analysis.mean_walltime(1, 8)


def test_adaptive_advisor_on_real_curves(knl_grid):
    """Section 8 future work wired end-to-end: per-section thread caps
    computed from measured curves predict a walltime no worse than the
    uniform configuration."""
    analysis, _ = knl_grid
    curves = {
        lab: analysis.section_series(lab, 1)
        for lab in ("LagrangeNodal", "LagrangeElements")
    }
    adv = AdaptiveAdvisor(curves)
    gain = adv.predicted_gain(uniform_threads=128)
    assert gain > 0.2  # restraining clearly helps past the inflexion
    assert adv.predicted_gain(uniform_threads=8) >= 0.0
