"""End-to-end convolution pipeline: sweep → profile → analysis → bounds."""

import pytest

from repro.core.analysis import ScalingAnalysis
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig


@pytest.fixture(scope="module")
def profile():
    sweep = ConvolutionSweep(
        config=ConvolutionConfig(height=96, width=128, steps=25),
        machine=nehalem_cluster(nodes=2, jitter=0.05),
        process_counts=(1, 2, 4, 8, 16),
        reps=2,
        compute_jitter=0.01,
        noise_floor=20e-6,
    )
    return run_convolution_sweep(sweep)


def test_speedup_monotone_then_saturating(profile):
    xs, sp = profile.speedup_series()
    assert sp[0] == pytest.approx(1.0)
    assert sp[2] > 1.7  # real acceleration at p=4 (tiny test problem)
    assert max(sp) < 16  # nothing superlinear


def test_convolve_time_shrinks_with_p(profile):
    _, avgs = profile.avg_series("CONVOLVE")
    assert avgs[-1] < avgs[0] / 6


def test_load_store_serial_components_constant(profile):
    _, loads = profile.avg_series("LOAD")
    assert max(loads) < min(loads) * 1.5  # roughly constant per process


def test_halo_bound_caps_measured_speedup_e2e(profile):
    """Eq. 6 verified on real simulated data at every scale."""
    an = ScalingAnalysis(profile)
    for entry in an.bound_table("HALO"):
        assert profile.speedup(entry.p) <= entry.bound * 1.05


def test_every_section_bound_caps_measured_speedup(profile):
    an = ScalingAnalysis(profile)
    violations = an.bounder.verify(
        {p: profile.speedup(p) for p in profile.scales() if p > 1},
        {
            p: {
                lab: profile.mean_total(lab, p)
                for lab in ("LOAD", "STORE", "CONVOLVE", "HALO")
                if profile.mean_total(lab, p) > 0
            }
            for p in profile.scales()
            if p > 1
        },
    )
    assert violations == {}


def test_binding_section_transitions_from_convolve(profile):
    an = ScalingAnalysis(profile)
    binding = an.binding_sections()
    assert binding[2].label == "CONVOLVE"  # compute still dominates at p=2


def test_karp_flatt_grows_with_overhead(profile):
    an = ScalingAnalysis(profile)
    rows = an.karp_flatt_rows()
    assert rows[-1]["karp_flatt"] > 0  # measurable serial/overhead fraction


def test_percent_breakdown_sums_below_100(profile):
    for p in profile.scales():
        prof = profile.runs(p)[0]
        total = sum(prof.breakdown().values())
        assert total <= 100.0 + 1e-6
        assert total > 90.0  # sections cover almost all execution
