"""Predictive-model validation on real simulated data.

Fit the per-section power laws on the small scales of a convolution
sweep, then check the model's *extrapolated* walltime/speedup against
held-out measurements at larger scales — the workflow a user would run
before requesting a bigger allocation.

The sweep runs on a single-tier (one-node) machine: power-law models
describe smooth scaling, and deliberately do not capture the regime
change at node boundaries (that structural effect is exercised in the
Figure 5/6 benchmarks instead).
"""

import pytest

from repro.core.models import SectionScalingModel, fit_usl_profile
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine.spec import CoreSpec, MachineSpec, NetworkTier, NodeSpec
from repro.workloads.convolution import ConvolutionConfig


def _flat_machine(cores: int = 64) -> MachineSpec:
    """One wide node, one network tier, zero jitter: smooth scaling."""
    node = NodeSpec(
        sockets=1,
        cores_per_socket=cores,
        core=CoreSpec(flops=9.0e9, hw_threads=1, ht_efficiency=0.0),
        mem_bandwidth=200.0e9,
        mem_per_node=64.0e9,
    )
    tier = NetworkTier(latency=1.0e-6, bandwidth=5.0e9, jitter=0.0)
    return MachineSpec(
        name="flat-64c", nodes=1, node=node, intra_node=tier, inter_node=tier,
        io_bandwidth=4.0e9, io_latency=1.0e-3,
    )


@pytest.fixture(scope="module")
def sweep_profile():
    sweep = ConvolutionSweep(
        config=ConvolutionConfig(height=192, width=256, steps=40),
        machine=_flat_machine(),
        process_counts=(1, 2, 4, 8, 16, 32, 64),
        reps=1,
        ranks_per_node=64,
        compute_jitter=0.0,
        noise_floor=0.0,
    )
    return run_convolution_sweep(sweep)


def test_model_extrapolates_heldout_scales(sweep_profile):
    model = SectionScalingModel.fit_profile(sweep_profile, max_scale=16)
    for p in (32, 64):
        predicted = model.walltime(p)
        measured = sweep_profile.mean_walltime(p)
        assert predicted == pytest.approx(measured, rel=0.20), p


def test_model_speedup_prediction_tracks_measurement(sweep_profile):
    model = SectionScalingModel.fit_profile(sweep_profile, max_scale=16)
    for p in (32, 64):
        assert model.speedup(p) == pytest.approx(
            sweep_profile.speedup(p), rel=0.20
        )


def test_model_identifies_serial_floor_sections(sweep_profile):
    model = SectionScalingModel.fit_profile(sweep_profile)
    # LOAD/STORE are rank-0-serial: their fitted floor is essentially
    # their whole time; CONVOLVE scales nearly ideally.
    assert model.fits["CONVOLVE"].b > 0.9
    for label in ("LOAD", "STORE"):
        fit = model.fits[label]
        assert fit.floor > 0.5 * fit.time(1)


def test_model_binding_section_at_extreme_scale(sweep_profile):
    model = SectionScalingModel.fit_profile(sweep_profile)
    label, bound = model.binding_section(10_000)
    assert label in ("LOAD", "STORE", "HALO", "GATHER", "SCATTER")
    # Eq. 6 in predicted form: the whole-model speedup respects the
    # binding section's bound, and the asymptote (sum of all floors) is
    # tighter than any single section's bound.
    assert model.speedup(10_000) <= bound * 1.0001
    assert model.asymptotic_speedup() <= bound * 1.0001


def test_model_saturation_scale_matches_measured_plateau(sweep_profile):
    model = SectionScalingModel.fit_profile(sweep_profile)
    p_sat = model.saturation_scale(gain_threshold=0.05)
    # the measured sweep still gains from 16 → 32, so saturation must not
    # be predicted below that; nor absurdly far past the serial floors.
    assert 16 <= p_sat <= 4096


def test_usl_fit_on_real_sweep(sweep_profile):
    fit = fit_usl_profile(sweep_profile)
    assert 0.0 <= fit.sigma < 0.2
    xs, ss = sweep_profile.speedup_series()
    for p, s in zip(xs, ss):
        assert fit.speedup(p) == pytest.approx(s, rel=0.30)
