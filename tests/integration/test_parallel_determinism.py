"""End-to-end determinism of the parallel/cached execution paths.

The tentpole guarantee of the performance subsystem: however a sweep is
executed — serially, over 2 or 4 worker processes, or replayed from the
persistent run cache — the exported JSON of the resulting profile
container is byte-identical, and downstream analyses (speedup series,
section breakdowns) therefore agree exactly.
"""

import pytest

from repro.core.export import scaling_to_json
from repro.harness.cache import RunCache
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine.catalog import nehalem_cluster
from repro.workloads.convolution import ConvolutionConfig


@pytest.fixture(scope="module")
def sweep():
    # Noisy configuration on purpose: jitter, OS-noise floor and network
    # spikes all draw from seeded RNG streams, which is exactly what
    # must not diverge across execution strategies.
    return ConvolutionSweep(
        config=ConvolutionConfig(height=48, width=64, steps=4),
        machine=nehalem_cluster(nodes=2),
        process_counts=(1, 2, 4, 8),
        reps=2,
    )


@pytest.fixture(scope="module")
def serial_json(sweep):
    return scaling_to_json(run_convolution_sweep(sweep, jobs=1))


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_export_byte_identical(sweep, serial_json, jobs):
    profile = run_convolution_sweep(sweep, jobs=jobs)
    assert scaling_to_json(profile) == serial_json


def test_cache_replay_byte_identical(sweep, serial_json, tmp_path):
    cache = RunCache(root=tmp_path)
    cold = run_convolution_sweep(sweep, cache=cache, jobs=2)
    warm = run_convolution_sweep(sweep, cache=cache)
    assert cache.hits == len(sweep.process_counts) * sweep.reps
    assert scaling_to_json(cold) == serial_json
    assert scaling_to_json(warm) == serial_json


def test_speedup_series_agrees_across_paths(sweep, serial_json, tmp_path):
    from repro.core.export import scaling_from_json

    parallel = run_convolution_sweep(sweep, jobs=2)
    reference = scaling_from_json(serial_json)
    assert parallel.speedup_series() == reference.speedup_series()
