"""Cross-validation: three independent observation paths agree.

The engine's raw event stream, the blob-based online profiler, and the
trace tool's coarse view are three different consumers of the same
Figure 2 callback contract; on any workload they must reconstruct the
same totals.
"""

import pytest

from repro.core.profile import SectionProfile
from repro.core.sections import build_instances
from repro.machine.catalog import nehalem_cluster
from repro.tools import SectionProfilerTool, TraceTool
from repro.workloads.convolution import ConvolutionBenchmark, ConvolutionConfig

from tests.conftest import mpi


@pytest.fixture(scope="module")
def observed():
    profiler = SectionProfilerTool()
    tracer = TraceTool()
    bench = ConvolutionBenchmark(ConvolutionConfig.tiny(steps=3))
    res = bench.run(
        4,
        machine=nehalem_cluster(nodes=1, jitter=0.02),
        seed=11,
        tools=[profiler, tracer],
    )
    return res, profiler, tracer


def test_profiler_equals_event_stream_totals(observed):
    res, profiler, _ = observed
    prof = SectionProfile.from_run(res)
    for label in prof.labels():
        assert profiler.total(label) == pytest.approx(
            prof.total(label), rel=1e-12
        ), label


def test_trace_instances_equal_event_stream_instances(observed):
    res, _, tracer = observed
    from_stream = build_instances(res.section_events)
    from_trace = tracer.coarse_view()
    key = lambda i: (i.label, i.occurrence)  # noqa: E731
    stream_map = {key(s.timing): s.timing for s in from_stream}
    assert len(from_trace) == len(from_stream)
    for inst in from_trace:
        ref = stream_map[key(inst)]
        assert inst.t_in == ref.t_in
        assert inst.t_out == ref.t_out


def test_walltime_equals_main_section_span(observed):
    res, _, tracer = observed
    main_inst = [i for i in tracer.coarse_view() if i.label == "MPI_MAIN"]
    assert len(main_inst) == 1
    assert main_inst[0].tmax == pytest.approx(res.walltime)
    assert main_inst[0].tmin == 0.0


def test_run_with_tools_matches_run_without():
    """Observation is free: attaching tools must not change virtual time."""
    bench = ConvolutionBenchmark(ConvolutionConfig.tiny(steps=3))
    mach = nehalem_cluster(nodes=1)
    bare = bench.run(2, machine=mach, seed=5)
    tooled = bench.run(2, machine=mach, seed=5,
                       tools=[SectionProfilerTool(), TraceTool()])
    assert bare.clocks == tooled.clocks
