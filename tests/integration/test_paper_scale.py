"""Paper-scale smoke validation (marked slow; run explicitly with
``pytest -m slow``).

Demonstrates that the substrate genuinely sustains the paper's extreme
configurations — 456 ranks on the 57-node Nehalem model, and the full
110 592-element Lulesh mesh at 64 ranks — not just the scaled-down
defaults.
"""

import numpy as np
import pytest

from repro.core.profile import SectionProfile
from repro.machine.catalog import knl_node, nehalem_cluster
from repro.workloads.convolution import (
    ConvolutionBenchmark,
    ConvolutionConfig,
    sequential_convolution,
)
from repro.workloads.images import image_checksum, make_image
from repro.workloads.lulesh import LuleshBenchmark, LuleshConfig

pytestmark = pytest.mark.slow


def test_456_ranks_convolution_correct_and_comm_dominated():
    cfg = ConvolutionConfig(height=576, width=864, steps=25)
    bench = ConvolutionBenchmark(cfg)
    res = bench.run(
        456,
        machine=nehalem_cluster(nodes=57),
        seed=7,
        compute_jitter=0.02,
        noise_floor=120e-6,
    )
    ref = sequential_convolution(
        make_image(cfg.height, cfg.width, cfg.channels, seed=cfg.image_seed),
        cfg.steps,
    )
    assert image_checksum(res.rank_result(0)) == image_checksum(ref)
    prof = SectionProfile.from_run(res)
    # At the paper's extreme scale communication clearly dominates compute.
    assert prof.total("HALO") > prof.total("CONVOLVE")


def test_full_lulesh_mesh_at_64_ranks():
    bench = LuleshBenchmark(LuleshConfig(s=12, steps=5, return_fields=False))
    run, phys = bench.run(64, nthreads=4, machine=knl_node())
    assert phys.energy_drift < 1e-12
    assert run.n_ranks == 64
    prof = SectionProfile.from_run(run)
    assert prof.total("timeloop") / prof.total("MPI_MAIN") > 0.9
