"""A rank-0 straggler's end-to-end signature: inflexion shift + imbalance.

The acceptance scenario for the fault subsystem: injecting a 2x
compute slowdown on rank 0 must (a) visibly move the convolution HALO
inflexion point — the straggler floods HALO with imbalance wait that
then *shrinks* as rank 0's compute share shrinks, pushing the inflexion
past the sampled range — and (b) show up in the per-instance
entry-imbalance metrics of Section 4's jitter analysis.
"""

import pytest

from repro.core.inflexion import find_inflexion
from repro.core.jitter import analyze_jitter
from repro.core.profile import SectionProfile
from repro.faults import FaultPlan, StragglerRank
from repro.harness.runner import run_convolution_sweep
from repro.harness.sweeps import ConvolutionSweep
from repro.machine.catalog import nehalem_cluster
from repro.tools.trace import TraceTool
from repro.workloads.convolution import ConvolutionBenchmark, ConvolutionConfig

STRAGGLER = FaultPlan((StragglerRank(rank=0, factor=2.0),))


def _sweep(faults=None):
    return ConvolutionSweep(
        config=ConvolutionConfig(height=96, width=128, steps=25),
        machine=nehalem_cluster(nodes=2, jitter=0.05),
        process_counts=(1, 2, 4, 8, 16),
        reps=2,
        compute_jitter=0.01,
        noise_floor=20e-6,
        faults=faults,
    )


@pytest.fixture(scope="module")
def clean():
    return run_convolution_sweep(_sweep())


@pytest.fixture(scope="module")
def straggled():
    return run_convolution_sweep(_sweep(STRAGGLER))


def _halo_inflexion(profile):
    xs, ts = profile.avg_series("HALO")
    pairs = [(x, t) for x, t in zip(xs, ts) if t > 0]
    return find_inflexion([x for x, _ in pairs], [t for _, t in pairs], 0.05)


def test_straggler_slows_every_scale(clean, straggled):
    for p in clean.scales():
        assert straggled.mean_walltime(p) > clean.mean_walltime(p)


def test_straggler_shifts_the_halo_inflexion(clean, straggled):
    """Clean runs hit the HALO inflexion immediately (jitter accumulation
    makes HALO grow past p=2); the straggler moves it later — HALO is now
    dominated by rank 0's entry lag, which decays as 1/p."""
    clean_pt = _halo_inflexion(clean)
    assert clean_pt is not None and clean_pt.p == 2

    straggled_pt = _halo_inflexion(straggled)
    assert straggled_pt is None or straggled_pt.p > clean_pt.p


def test_straggler_inflates_halo_wait_at_small_p(clean, straggled):
    """The mechanism behind the shift: at p=2 the straggled HALO is pure
    imbalance wait, far above the clean run's transfer time."""
    assert straggled.mean_avg_per_process("HALO", 2) > (
        3.0 * clean.mean_avg_per_process("HALO", 2)
    )


# -- entry-imbalance metrics -------------------------------------------------


def _traced_run(faults):
    tool = TraceTool(label_filter=lambda lab: lab == "HALO")
    bench = ConvolutionBenchmark(ConvolutionConfig(height=96, width=128,
                                                   steps=25))
    res = bench.run(4, machine=nehalem_cluster(nodes=1, jitter=0.05),
                    seed=3, tools=(tool,), faults=faults)
    return analyze_jitter(tool.coarse_view()), SectionProfile.from_run(res)


def test_straggler_shows_in_entry_imbalance_metrics():
    clean_rep, clean_prof = _traced_run(None)
    slow_rep, slow_prof = _traced_run(STRAGGLER)

    # Per-instance entry spread into HALO explodes: the peers post their
    # halos on time, rank 0 arrives a compute-step late, every step.
    assert slow_rep.mean_entry_imbalance > 4.0 * clean_rep.mean_entry_imbalance

    # And the per-rank compute totals name the culprit: rank 0 spends
    # ~2x the compute time of any peer (vs near-parity when clean).
    slow_rt = slow_prof.rank_times("CONVOLVE")
    peers = [t for r, t in slow_rt.items() if r != 0]
    assert slow_rt[0] == pytest.approx(2.0 * max(peers), rel=0.1)
    clean_rt = clean_prof.rank_times("CONVOLVE")
    assert max(clean_rt.values()) < 1.1 * min(clean_rt.values())
