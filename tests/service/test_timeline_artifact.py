"""The ``efficiency_timeline`` artifact: golden payload, warm registry,
query-parameter recomputes.

The artifact must be a pure registry read (no simulations) serving
exactly the payload's precomputed ``timeline`` block, byte-identical to
the library path; ``?windows=/strategy=/rel_tol=`` re-derive a different
view from the persisted interval records — still zero simulations.
"""

from __future__ import annotations

import json

from repro.analysis.timeresolved import (
    WindowConfig,
    scenario_timeline_from_payload,
)
from repro.harness.scenario import run_scenario, scenario_payload
from repro.scenarios import ScenarioSpec
from repro.service.api import ServiceApp
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer

from tests.service.test_scenario_jobs import SCENARIO, tiny_scenario_spec


def test_artifact_matches_the_library_path_byte_for_byte(server):
    client = ServiceClient(server.url)
    job_id = client.submit(tiny_scenario_spec())["job_id"]
    client.wait(job_id, timeout=60)

    served = client.artifact(job_id, "efficiency_timeline")
    sspec = ScenarioSpec.from_dict(dict(SCENARIO))
    profile, metrics, intervals = run_scenario(sspec)
    direct = scenario_payload(sspec, profile, metrics, intervals)["timeline"]
    assert json.dumps(served, sort_keys=True) == \
        json.dumps({"timeline": direct}, sort_keys=True)

    # Golden shape of the block (the documented contract).
    tl = served["timeline"]
    assert tl["config"] == {"strategy": "fixed", "windows": 16}
    assert sorted(tl["scales"]) == ["1", "2", "4"]
    for t in tl["scales"].values():
        assert len(t["rows"]) == 16
        assert set(t["sections"]) == {"INIT", "HALO", "COMPUTE", "REDUCE"}
    assert set(tl["inflexion"]["sections"]) == \
        {"INIT", "HALO", "COMPUTE", "REDUCE"}


def test_warm_resubmit_serves_the_timeline_with_zero_simulations(tmp_path):
    cache_dir = tmp_path / "cache"
    first = ServiceServer(ServiceApp(cache_dir=cache_dir, workers=1))
    first.start()
    try:
        client = ServiceClient(first.url)
        job_id = client.submit(tiny_scenario_spec())["job_id"]
        client.wait(job_id, timeout=60)
        original = client.artifact(job_id, "efficiency_timeline")
    finally:
        first.stop()

    second_app = ServiceApp(cache_dir=cache_dir, workers=1)
    second = ServiceServer(second_app)
    second.start()
    try:
        client = ServiceClient(second.url)
        receipt = client.submit(tiny_scenario_spec())
        assert receipt["cached"] is True
        warm = client.artifact(receipt["job_id"], "efficiency_timeline")
        assert warm == original
        assert second_app.metrics.counter("jobs_submitted") == 0
    finally:
        second.stop()


def test_query_parameters_recompute_other_views(server):
    client = ServiceClient(server.url)
    job_id = client.submit(tiny_scenario_spec())["job_id"]
    client.wait(job_id, timeout=60)
    result = client.result(job_id)["result"]

    eight = client.artifact(job_id, "efficiency_timeline", windows=8)
    want = scenario_timeline_from_payload(result, WindowConfig(windows=8))
    assert eight == {"timeline": want}
    assert all(len(t["rows"]) == 8
               for t in eight["timeline"]["scales"].values())

    adaptive = client.artifact(job_id, "efficiency_timeline",
                               strategy="adaptive")
    counts = {len(t["rows"])
              for t in adaptive["timeline"]["scales"].values()}
    assert len(counts) == 1                 # phase-aligned at every scale

    loose = client.artifact(job_id, "efficiency_timeline", rel_tol=0.5)
    assert loose["timeline"]["rel_tol"] == 0.5


def test_bad_query_parameters_are_loud(server):
    client = ServiceClient(server.url)
    job_id = client.submit(tiny_scenario_spec())["job_id"]
    client.wait(job_id, timeout=60)
    try:
        client.artifact(job_id, "efficiency_timeline", bins=4)
        raise AssertionError("unknown parameter accepted")
    except Exception as exc:
        assert "400" in str(exc) or "unknown" in str(exc)
    try:
        client.artifact(job_id, "efficiency_timeline", strategy="hourly")
        raise AssertionError("unknown strategy accepted")
    except Exception as exc:
        assert "400" in str(exc) or "strategy" in str(exc)
