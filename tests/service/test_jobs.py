"""Job-spec parsing, content addressing, and direct execution."""

from __future__ import annotations

import pytest

from repro.harness.sweeps import ConvolutionSweep, LuleshGridSweep
from repro.service.jobs import (
    JobSpecError,
    build_sweep,
    execute_job,
    parse_job_spec,
)

from tests.service.conftest import tiny_conv_spec, tiny_lulesh_spec


def test_parse_convolution_spec_builds_sweep():
    spec = parse_job_spec(tiny_conv_spec())
    sweep = build_sweep(spec)
    assert isinstance(sweep, ConvolutionSweep)
    assert sweep.process_counts == (1, 2, 4)
    assert sweep.reps == 1
    assert sweep.base_seed == 100


def test_parse_lulesh_spec_builds_sweep():
    spec = parse_job_spec(tiny_lulesh_spec())
    sweep, sides = build_sweep(spec)
    assert isinstance(sweep, LuleshGridSweep)
    assert sorted(sweep.grid) == [1, 8]
    assert sides == {1: 6, 8: 3}


@pytest.mark.parametrize("mutant", [
    {"kind": "nope"},
    {"process_counts": []},
    {"process_counts": [2, 4]},          # p=1 missing → harness rejects
    {"reps": 0},
    {"on_error": "explode"},
    {"retries": -1},
    {"machine": {"name": "cray"}},
    {"workload": {"height": 64}},        # width/steps missing
    {"client": ""},
    {"wall_timeout": -1.0},
    {"engine": "fibers"},
    {"engine": 7},
    {"faults": {"faults": [{"kind": "warp", "rank": 0}]}},
])
def test_bad_convolution_specs_rejected(mutant):
    with pytest.raises(JobSpecError):
        parse_job_spec(tiny_conv_spec(**mutant))


def test_bad_lulesh_grid_rejected():
    with pytest.raises(JobSpecError):
        parse_job_spec(tiny_lulesh_spec(grid={"3": [1]}))  # not a cube


def test_non_object_spec_rejected():
    with pytest.raises(JobSpecError):
        parse_job_spec(["kind", "convolution"])


def test_key_is_stable_and_policy_free():
    """The content key hashes the work, not the submitter or policy."""
    a = parse_job_spec(tiny_conv_spec())
    b = parse_job_spec(tiny_conv_spec(client="someone-else", retries=3,
                                      on_error="skip", jobs=2,
                                      engine="threads"))
    assert a.key == b.key
    assert len(a.key) == 64


def test_engine_choice_reaches_the_sweep_but_not_the_key():
    """Both engines give bit-identical results, so the engine is pure
    execution policy: plumbed into the sweep, excluded from the key."""
    spec = parse_job_spec(tiny_conv_spec(engine="threads"))
    assert build_sweep(spec).engine == "threads"
    assert spec.key == parse_job_spec(tiny_conv_spec()).key
    lspec = parse_job_spec(tiny_lulesh_spec(engine="threadfree"))
    lsweep, _ = build_sweep(lspec)
    assert lsweep.engine == "threadfree"
    assert parse_job_spec(tiny_conv_spec()).to_dict()["engine"] is None


def test_key_changes_with_work():
    a = parse_job_spec(tiny_conv_spec())
    b = parse_job_spec(tiny_conv_spec(base_seed=101))
    c = parse_job_spec(tiny_conv_spec(
        faults={"seed": 1, "faults": [
            {"kind": "straggler", "rank": 0, "factor": 2.0}
        ]},
    ))
    assert len({a.key, b.key, c.key}) == 3


def test_process_count_order_is_canonical():
    a = parse_job_spec(tiny_conv_spec(process_counts=[4, 1, 2]))
    b = parse_job_spec(tiny_conv_spec(process_counts=[1, 2, 4]))
    assert a.key == b.key


def test_execute_convolution_matches_direct_run():
    """The service executor is the harness, not a reimplementation."""
    from repro.core.export import scaling_to_json
    from repro.harness.runner import run_convolution_sweep

    spec = parse_job_spec(tiny_conv_spec())
    payload = execute_job(spec)
    direct = run_convolution_sweep(build_sweep(spec))
    assert payload["profile_json"] == scaling_to_json(direct)
    assert payload["failures"] == []
    assert payload["summary"]["speedup"]["1"] == 1.0


def test_execute_lulesh_matches_direct_run():
    import json

    from repro.harness.runner import run_lulesh_grid
    from repro.service.jobs import hybrid_to_points

    spec = parse_job_spec(tiny_lulesh_spec())
    payload = execute_job(spec)
    sweep, sides = build_sweep(spec)
    analysis, drifts = run_lulesh_grid(sweep, sides=sides)
    assert json.dumps(payload["points"]) == json.dumps(hybrid_to_points(analysis))
    assert payload["drifts"] == {
        f"{p},{t}": d for (p, t), d in sorted(drifts.items())
    }


def test_execute_with_progress_lines():
    lines = []
    spec = parse_job_spec(tiny_conv_spec())
    execute_job(spec, progress=lines.append)
    assert len(lines) == 3  # one per (p, rep) point
    assert all(line.startswith("convolution p=") for line in lines)
