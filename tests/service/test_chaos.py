"""Chaos harness (tier-1 scale): kills + a restart lose and duplicate nothing.

The full 50-job soak with five seeded kill points lives in
``benchmarks/test_bench_service_chaos.py``; this is the same campaign
shape scaled to the tier-1 time budget — a sweep of unique jobs served
while worker processes are SIGKILLed at seeded points and the server
itself "crashes" (workers killed, queue abandoned) mid-campaign, then
restarts over the same cache/journal.

Invariants asserted, per the ISSUE acceptance bar:

* **zero lost jobs** — every accepted job ends ``done`` in the registry;
* **zero duplicate simulations** — each job completes exactly once
  across both server generations, and resubmits after recovery are
  answered from the registry with no new work;
* **byte-identical artifacts** — every payload equals the one an
  undisturbed server produces for the same spec.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time

from repro.service.api import ServiceApp

from tests.service.conftest import tiny_conv_spec

N_JOBS = 8
KILLS = 2


def _submit(app, spec):
    status, _, body = app.handle("POST", "/api/v1/jobs", {},
                                 json.dumps(spec).encode())
    assert status in (200, 202)
    return json.loads(body)


def _specs():
    return [tiny_conv_spec(base_seed=100 + i, client=f"chaos-{i % 3}")
            for i in range(N_JOBS)]


def _done_count(app, keys):
    n = 0
    for key in keys:
        record = app.registry.get(key)
        if record is not None and record.get("status") == "done":
            n += 1
    return n


def test_chaos_campaign_loses_and_duplicates_nothing(tmp_path):
    rng = random.Random(4242)
    cache_dir = tmp_path / "cache"

    # -- generation 1: serve under fire --------------------------------------
    app1 = ServiceApp(cache_dir=cache_dir, workers=2, worker_mode="process",
                      retry_budget=3, retry_backoff=0.05, chaos_seed=1)
    app1.start()
    keys = [_submit(app1, spec)["job_id"] for spec in _specs()]
    assert len(set(keys)) == N_JOBS

    # SIGKILL workers at seeded points while the campaign runs
    for _ in range(KILLS):
        time.sleep(rng.uniform(0.2, 0.6))
        pids = app1.scheduler.worker_pids()
        if pids:
            os.kill(rng.choice(pids), signal.SIGKILL)

    # let part of the campaign land, then "crash" the server: workers
    # killed, queued jobs abandoned — only the journal survives
    deadline = time.time() + 60
    while _done_count(app1, keys) < N_JOBS // 2:
        assert time.time() < deadline, "campaign stalled before the crash"
        time.sleep(0.05)
    app1.close(drain=False, preserve_queued=True)
    completed_gen1 = app1.metrics.counter("jobs_completed")

    # -- generation 2: replay the journal, finish the campaign ---------------
    app2 = ServiceApp(cache_dir=cache_dir, workers=2, worker_mode="process",
                      retry_budget=3, retry_backoff=0.05, chaos_seed=2)
    app2.start()
    try:
        assert app2.replay_stats["replayed"] + completed_gen1 >= 1
        deadline = time.time() + 120
        while _done_count(app2, keys) < N_JOBS:
            assert time.time() < deadline, (
                f"lost jobs: only {_done_count(app2, keys)}/{N_JOBS} done")
            time.sleep(0.05)

        # zero lost jobs
        assert _done_count(app2, keys) == N_JOBS
        # zero duplicate simulations: each job completed exactly once
        # across both generations...
        completed_gen2 = app2.metrics.counter("jobs_completed")
        assert completed_gen1 + completed_gen2 == N_JOBS
        # ...and resubmits are answered from the registry, zero new work
        before_hits = app2.metrics.counter("registry_hits")
        for spec in _specs():
            receipt = _submit(app2, spec)
            assert receipt["cached"] is True
        assert app2.metrics.counter("registry_hits") == before_hits + N_JOBS
        assert app2.metrics.counter("jobs_submitted") == 0
        chaotic = {
            key: json.dumps(app2.registry.get(key)["result"], sort_keys=True)
            for key in keys
        }
    finally:
        app2.close()

    # -- control: an undisturbed run produces the same bytes -----------------
    control = ServiceApp(cache_dir=tmp_path / "control-cache", workers=2,
                         worker_mode="thread")
    control.start()
    try:
        for spec, key in zip(_specs(), keys):
            receipt = _submit(control, spec)
            assert receipt["job_id"] == key
        deadline = time.time() + 120
        while _done_count(control, keys) < N_JOBS:
            assert time.time() < deadline
            time.sleep(0.05)
        for key in keys:
            expected = json.dumps(control.registry.get(key)["result"],
                                  sort_keys=True)
            assert chaotic[key] == expected, f"artifact drift on {key[:12]}"
    finally:
        control.close()
