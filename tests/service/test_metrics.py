"""Metrics core: counters, quantiles, Prometheus rendering."""

from __future__ import annotations

from repro.service.metrics import ServiceMetrics, percentile


def test_percentile_interpolates():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 1.0) == 4.0
    assert percentile(data, 0.5) == 2.5
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.95) == 7.0


def test_counters_start_at_zero_and_increment():
    m = ServiceMetrics()
    assert m.counter("jobs_submitted") == 0
    m.inc("jobs_submitted")
    m.inc("jobs_submitted", 2)
    assert m.counter("jobs_submitted") == 3
    m.inc("made_up_counter")
    assert m.counter("made_up_counter") == 1


def test_latency_summary():
    m = ServiceMetrics()
    for s in (0.1, 0.2, 0.3, 0.4):
        m.observe_latency(s)
    lat = m.snapshot()["latency"]
    assert lat["count"] == 4
    assert abs(lat["sum"] - 1.0) < 1e-12
    assert abs(lat["p50"] - 0.25) < 1e-12
    assert lat["p95"] <= 0.4


def test_prometheus_rendering_shape():
    m = ServiceMetrics()
    m.inc("jobs_submitted")
    m.observe_latency(0.5)
    text = m.render_prometheus(
        gauges={"queue_depth": (3.0, "Jobs waiting.")},
        cache_stats={"hits": 2, "misses": 2, "stores": 1, "corrupt": 0,
                     "entries": 5, "bytes": 1234},
    )
    assert "# TYPE repro_jobs_submitted_total counter" in text
    assert "repro_jobs_submitted_total 1" in text
    assert "repro_queue_depth 3" in text
    assert "repro_cache_hits_total 2" in text
    assert "repro_cache_hit_ratio 0.5" in text
    assert 'repro_job_latency_seconds{quantile="0.5"} 0.5' in text
    assert "repro_job_latency_seconds_count 1" in text
    # every non-comment line is "name[{labels}] value"
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name, value = line.rsplit(" ", 1)
        assert name and float(value) is not None


def test_zero_traffic_renders_zeros():
    text = ServiceMetrics().render_prometheus()
    assert "repro_jobs_completed_total 0" in text
    assert "repro_job_latency_seconds_count 0" in text
