"""Graceful SIGTERM drain and journal-driven restart, over a real process.

These tests exercise the full ``repro serve`` path the way an init
system would: spawn the CLI as a subprocess, deliver SIGTERM, assert it
drains and exits 0, then restart it over the same cache directory and
watch the journal replay finish the preserved jobs.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service.api import ServiceApp
from repro.service.client import ServiceClient

from tests.service.conftest import tiny_conv_spec

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _start_server(cache_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--port", "0", "--cache-dir", str(cache_dir),
         "--workers", "1", "--worker-mode", "process", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO_ROOT,
    )
    line = proc.stdout.readline()
    m = re.search(r"listening on (http://[\d.]+:\d+)", line)
    assert m, f"no listening banner, got: {line!r} "
    return proc, m.group(1)


def _drain_output(proc, timeout=60):
    try:
        out, _ = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
        raise AssertionError(f"server did not exit; output so far:\n{out}")
    return out


@pytest.mark.slow
def test_sigterm_drains_preserves_queued_and_exits_zero(tmp_path):
    cache_dir = tmp_path / "cache"
    proc, url = _start_server(cache_dir)
    keys = []
    try:
        client = ServiceClient(url, retries=3, retry_backoff=0.1, seed=1)
        # one job big enough to still be running at SIGTERM + two queued
        keys.append(client.submit(tiny_conv_spec(
            workload={"height": 128, "width": 192, "steps": 40},
            process_counts=[1, 2, 4, 8], reps=2, base_seed=51,
        ))["job_id"])
        keys.append(client.submit(tiny_conv_spec(base_seed=52))["job_id"])
        keys.append(client.submit(tiny_conv_spec(base_seed=53))["job_id"])
    finally:
        proc.send_signal(signal.SIGTERM)
    out = _drain_output(proc)
    assert proc.returncode == 0, f"non-zero exit; output:\n{out}"
    assert "draining" in out
    assert "stopped" in out

    # the journal holds the preserved (not cancelled) jobs
    journal_text = (cache_dir / "journal.wal").read_text()
    assert any(key in journal_text for key in keys)

    # -- restart over the same cache: replay finishes every job --------------
    proc2, url2 = _start_server(cache_dir)
    try:
        client2 = ServiceClient(url2, retries=3, retry_backoff=0.1, seed=2)
        for key in keys:
            record = client2.wait(key, timeout=120)
            assert record["status"] == "done", record
        # the drained job was NOT re-simulated: its registry record
        # predates the restart, so a resubmit is a warm hit
        receipt = client2.submit(tiny_conv_spec(base_seed=52))
        assert receipt["cached"] is True
        metrics = client2.metrics_text()
        assert "repro_journal_replay_seconds" in metrics
    finally:
        proc2.send_signal(signal.SIGTERM)
        out2 = _drain_output(proc2)
        assert proc2.returncode == 0, out2


def test_restart_replays_despite_torn_final_record(tmp_path):
    cache_dir = tmp_path / "cache"
    app = ServiceApp(cache_dir=cache_dir, workers=1)
    status, _, body = app.handle(
        "POST", "/api/v1/jobs", {},
        json.dumps(tiny_conv_spec(base_seed=61)).encode())
    assert status == 202
    key = json.loads(body)["job_id"]
    app.close(preserve_queued=True)  # queued job stays journalled

    # crash-mid-append: a torn, checksum-failing final line
    with open(app.journal.path, "a", encoding="utf-8") as fh:
        fh.write("deadbeef" * 8 + ' {"event": "complete", "key": "' + key)

    app2 = ServiceApp(cache_dir=cache_dir, workers=1)
    app2.start()
    try:
        assert app2.replay_stats["torn"] == 1
        assert app2.replay_stats["replayed"] == 1
        assert app2.metrics.counter("jobs_replayed") == 1
        deadline = time.time() + 60
        while True:
            record = app2.registry.get(key)
            if record is not None and record.get("status") == "done":
                break
            assert time.time() < deadline, "replayed job never completed"
            time.sleep(0.05)
    finally:
        app2.close()


def test_registry_win_makes_replay_skip_completed_job(tmp_path):
    """Crash between the registry write and the journal terminal line:
    the registry (written first) wins and the job is not re-run."""
    cache_dir = tmp_path / "cache"
    app = ServiceApp(cache_dir=cache_dir, workers=1)
    app.start()
    status, _, body = app.handle(
        "POST", "/api/v1/jobs", {},
        json.dumps(tiny_conv_spec(base_seed=62)).encode())
    key = json.loads(body)["job_id"]
    deadline = time.time() + 60
    while (app.registry.get(key) or {}).get("status") != "done":
        assert time.time() < deadline
        time.sleep(0.05)
    app.close()

    # rewrite the journal as if the 'complete' line never landed
    journal = app.journal
    found = journal.replay()
    assert found.pending == []
    from repro.service.journal import PendingJob
    from repro.service.jobs import parse_job_spec
    spec = parse_job_spec(tiny_conv_spec(base_seed=62))
    journal.compact([PendingJob(key=key, spec=spec.to_dict(),
                                submitted_at=time.time())])

    app2 = ServiceApp(cache_dir=cache_dir, workers=1)
    app2.start()
    try:
        # replay consulted the registry and skipped the finished job
        assert app2.replay_stats["recovered"] == 1
        assert app2.replay_stats["replayed"] == 0
        assert app2.queue.in_flight() == 0
        assert app2.metrics.counter("jobs_replayed") == 0
    finally:
        app2.close()
