"""Endpoint behaviour through ServiceApp.handle — no sockets involved."""

from __future__ import annotations

import json

from tests.service.conftest import tiny_conv_spec


def _post(app, spec):
    return app.handle("POST", "/api/v1/jobs", {},
                      json.dumps(spec).encode())


def _body(response):
    return json.loads(response[2].decode())


def test_health(idle_app):
    status, headers, body = idle_app.handle("GET", "/healthz")
    assert status == 200
    assert json.loads(body)["ok"] is True


def test_unknown_route_404(idle_app):
    assert idle_app.handle("GET", "/nope")[0] == 404
    assert idle_app.handle("PUT", "/api/v1/jobs")[0] == 405


def test_submit_bad_json_400(idle_app):
    status, _, body = idle_app.handle("POST", "/api/v1/jobs", {}, b"{nope")
    assert status == 400
    assert "JSON" in json.loads(body)["error"]


def test_submit_bad_spec_400(idle_app):
    resp = _post(idle_app, {"kind": "warp-drive"})
    assert resp[0] == 400
    assert idle_app.metrics.counter("jobs_rejected") == 1


def test_submit_queues_job(idle_app):
    resp = _post(idle_app, tiny_conv_spec())
    assert resp[0] == 202
    body = _body(resp)
    assert body["status"] == "queued" and len(body["job_id"]) == 64
    status_resp = idle_app.handle("GET", f"/api/v1/jobs/{body['job_id']}")
    assert _body(status_resp)["status"] == "queued"


def test_duplicate_submits_coalesce(idle_app):
    first = _body(_post(idle_app, tiny_conv_spec()))
    second = _body(_post(idle_app, tiny_conv_spec(client="other")))
    assert second["job_id"] == first["job_id"]
    assert second["deduplicated"] is True
    assert idle_app.metrics.counter("jobs_deduplicated") == 1
    assert idle_app.queue.in_flight() == 1


def test_queue_full_429(idle_app):
    # idle_app: queue_limit=4, per_client=2 — fill with 2 clients
    for seed, client in [(1, "a"), (2, "a"), (3, "b"), (4, "b")]:
        assert _post(idle_app, tiny_conv_spec(base_seed=seed,
                                              client=client))[0] == 202
    status, headers, _ = _post(idle_app, tiny_conv_spec(base_seed=5,
                                                        client="c"))
    assert status == 429
    assert headers.get("Retry-After") == "1"


def test_per_client_limit_429(idle_app):
    assert _post(idle_app, tiny_conv_spec(base_seed=1))[0] == 202
    assert _post(idle_app, tiny_conv_spec(base_seed=2))[0] == 202
    resp = _post(idle_app, tiny_conv_spec(base_seed=3))
    assert resp[0] == 429
    assert "client" in _body(resp)["error"]


def test_result_conflict_while_queued(idle_app):
    job_id = _body(_post(idle_app, tiny_conv_spec()))["job_id"]
    assert idle_app.handle("GET", f"/api/v1/jobs/{job_id}/result")[0] == 409


def test_status_of_unknown_job_404(idle_app):
    assert idle_app.handle("GET", f"/api/v1/jobs/{'0' * 64}")[0] == 404
    assert idle_app.handle("GET", f"/api/v1/jobs/{'0' * 64}/result")[0] == 404
    assert idle_app.handle("DELETE", f"/api/v1/jobs/{'0' * 64}")[0] == 404


def test_delete_in_flight_job_409(idle_app):
    job_id = _body(_post(idle_app, tiny_conv_spec()))["job_id"]
    assert idle_app.handle("DELETE", f"/api/v1/jobs/{job_id}")[0] == 409


def test_metrics_exposes_queue_depth(idle_app):
    _post(idle_app, tiny_conv_spec())
    status, headers, body = idle_app.handle("GET", "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = body.decode()
    assert "repro_queue_depth 1" in text
    assert "repro_jobs_in_flight 1" in text
    assert "repro_jobs_submitted_total 1" in text


def test_full_job_lifecycle_through_handle(app):
    """submit → poll → result → artifacts, all through the app surface."""
    job_id = _body(_post(app, tiny_conv_spec()))["job_id"]
    for _ in range(600):
        record = _body(app.handle("GET", f"/api/v1/jobs/{job_id}"))
        if record["status"] not in ("queued", "running"):
            break
        import time
        time.sleep(0.01)
    assert record["status"] == "done"
    result = _body(app.handle("GET", f"/api/v1/jobs/{job_id}/result"))
    assert result["result"]["kind"] == "convolution"
    art = app.handle("GET", f"/api/v1/jobs/{job_id}/artifacts/speedup")
    assert art[0] == 200
    rows = _body(art)["rows"]
    assert rows[0] == {"p": 1, "speedup": 1.0, "efficiency": 1.0}
    report = app.handle("GET", f"/api/v1/jobs/{job_id}/artifacts/report")
    assert report[0] == 200
    assert b"scaling report" in report[2]
    bounds = app.handle("GET",
                        f"/api/v1/jobs/{job_id}/artifacts/bounds")
    assert bounds[0] == 200
    assert _body(bounds)["label"] == "HALO"
    assert app.handle(
        "GET", f"/api/v1/jobs/{job_id}/artifacts/nonsense"
    )[0] == 404
    # registry delete works once the job has left the queue
    assert app.handle("DELETE", f"/api/v1/jobs/{job_id}")[0] == 200
    assert app.handle("GET", f"/api/v1/jobs/{job_id}")[0] == 404


def test_jobs_listing_merges_live_and_stored(app):
    job_id = _body(_post(app, tiny_conv_spec()))["job_id"]
    listing = _body(app.handle("GET", "/api/v1/jobs"))
    assert {j["job_id"] for j in listing["live"]} | {
        j["job_id"] for j in listing["stored"]
    } >= {job_id}
