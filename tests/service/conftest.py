"""Shared fixtures for the service tests: tiny specs, apps, live servers.

Job specs here are deliberately minuscule (tens of milliseconds of
simulated sweep), so the whole service suite — including the live-HTTP
end-to-end tests — stays inside the tier-1 time budget.
"""

from __future__ import annotations

import pytest

from repro.service.api import ServiceApp
from repro.service.server import ServiceServer


def tiny_conv_spec(**overrides) -> dict:
    """A convolution job spec that simulates in ~20 ms."""
    spec = {
        "kind": "convolution",
        "client": "tester",
        "workload": {"height": 64, "width": 96, "steps": 5},
        "machine": {"name": "nehalem", "nodes": 4},
        "process_counts": [1, 2, 4],
        "reps": 1,
        "base_seed": 100,
    }
    spec.update(overrides)
    return spec


def tiny_lulesh_spec(**overrides) -> dict:
    """A Lulesh grid job spec that simulates in ~40 ms."""
    spec = {
        "kind": "lulesh",
        "client": "tester",
        "workload": {"s": 6, "steps": 2},
        "machine": {"name": "knl"},
        "grid": {"1": [1, 2], "8": [1]},
        "sides": {"1": 6, "8": 3},
        "reps": 1,
        "base_seed": 300,
    }
    spec.update(overrides)
    return spec


@pytest.fixture
def app(tmp_path):
    """A started service app on a private cache dir; drained at teardown."""
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=2)
    app.start()
    yield app
    app.close()


@pytest.fixture
def idle_app(tmp_path):
    """An app whose scheduler is NOT running — jobs stay queued, which
    makes admission-control tests deterministic."""
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1,
                     queue_limit=4, per_client=2)
    yield app
    app.close()


@pytest.fixture
def server(tmp_path):
    """A live HTTP server on an ephemeral port; stopped at teardown."""
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=2)
    server = ServiceServer(app)
    server.start()
    yield server
    server.stop()
