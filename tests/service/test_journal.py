"""The durable job journal: WAL semantics, torn records, compaction."""

from __future__ import annotations

import json

from repro.service.journal import (JOURNAL_SCHEMA_VERSION, JobJournal,
                                   PendingJob)

SPEC = {"kind": "convolution", "work": {"x": 1}}
KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def make_journal(tmp_path) -> JobJournal:
    return JobJournal(tmp_path / "journal.wal", fsync=False)


def test_roundtrip_submit_claim_complete(tmp_path):
    j = make_journal(tmp_path)
    j.append("submit", KEY_A, spec=SPEC, priority="batch")
    j.append("claim", KEY_A, attempt=1)
    j.append("complete", KEY_A)
    found = j.replay()
    assert found.pending == []
    assert found.events == 3
    assert found.torn == 0
    assert found.completed == 1


def test_orphan_replays_with_attempts_preserved(tmp_path):
    j = make_journal(tmp_path)
    j.append("submit", KEY_A, spec=SPEC, priority="interactive")
    j.append("claim", KEY_A, attempt=1)
    j.append("requeue", KEY_A, attempt=1)
    j.append("claim", KEY_A, attempt=2)
    found = j.replay()
    assert len(found.pending) == 1
    pending = found.pending[0]
    assert pending.key == KEY_A
    assert pending.spec == SPEC
    assert pending.priority == "interactive"
    assert pending.orphaned is True  # claimed when the process died
    assert pending.attempts == 2     # poison progress survives restarts


def test_torn_final_record_is_dropped_not_fatal(tmp_path):
    j = make_journal(tmp_path)
    j.append("submit", KEY_A, spec=SPEC)
    j.append("submit", KEY_B, spec=SPEC)
    j.append("complete", KEY_B)
    j.close()
    # crash mid-append: half a line, no checksum match
    with open(j.path, "a", encoding="utf-8") as fh:
        fh.write('0' * 64 + ' {"event": "complete", "key": "' + KEY_A)
    found = j.replay()
    assert found.torn == 1
    assert [p.key for p in found.pending] == [KEY_A]  # still pending
    assert found.completed == 1


def test_corrupt_interior_line_is_skipped(tmp_path):
    j = make_journal(tmp_path)
    j.append("submit", KEY_A, spec=SPEC)
    j.append("submit", KEY_B, spec=SPEC)
    j.append("submit", KEY_C, spec=SPEC)
    j.close()
    lines = j.path.read_text().splitlines()
    # bit-rot the middle submit (line 0 is the version header)
    lines[2] = lines[2][:70] + ("x" if lines[2][70] != "x" else "y") + lines[2][71:]
    j.path.write_text("\n".join(lines) + "\n")
    found = j.replay()
    assert found.torn == 1
    assert sorted(p.key for p in found.pending) == [KEY_A, KEY_C]


def test_compaction_keeps_only_pending_submits(tmp_path):
    j = make_journal(tmp_path)
    j.append("submit", KEY_A, spec=SPEC)
    j.append("submit", KEY_B, spec=SPEC)
    j.append("claim", KEY_B, attempt=1)
    j.append("complete", KEY_B)
    before = j.replay()
    assert [p.key for p in before.pending] == [KEY_A]
    j.compact(before.pending)
    text = j.path.read_text()
    assert KEY_A in text and KEY_B not in text
    after = j.replay()  # compaction is replay-idempotent
    assert [p.key for p in after.pending] == [KEY_A]
    assert after.events == 1


def test_compaction_preserves_attempts_and_priority(tmp_path):
    j = make_journal(tmp_path)
    j.compact([PendingJob(key=KEY_A, spec=SPEC, priority="interactive",
                          attempts=2, submitted_at=123.0)])
    found = j.replay()
    assert found.pending[0].attempts == 2
    assert found.pending[0].priority == "interactive"
    assert found.pending[0].submitted_at == 123.0


def test_unknown_schema_journal_is_ignored_wholesale(tmp_path):
    j = make_journal(tmp_path)
    j.append("submit", KEY_A, spec=SPEC)
    j.close()
    lines = j.path.read_text().splitlines()
    body = json.dumps({"event": "version", "schema": JOURNAL_SCHEMA_VERSION + 1},
                      sort_keys=True, separators=(",", ":"))
    import hashlib
    lines[0] = hashlib.sha256(body.encode()).hexdigest() + " " + body
    j.path.write_text("\n".join(lines) + "\n")
    found = j.replay()
    assert found.pending == [] and found.events == 0


def test_missing_journal_replays_empty(tmp_path):
    j = make_journal(tmp_path)
    found = j.replay()
    assert found.pending == [] and found.events == 0 and found.torn == 0


def test_unknown_event_is_rejected(tmp_path):
    j = make_journal(tmp_path)
    try:
        j.append("explode", KEY_A)
    except ValueError:
        pass
    else:
        raise AssertionError("unknown event must raise")
