"""Scenario jobs through the service: keys, execution, warm registry.

``kind: "scenario"`` must compose with every existing service promise:
content-addressed dedup (spelled-out defaults and key order share a
key; a different engine does **not** — the scenario level treats engine
as part of the question), byte-identical results versus the library
path, and warm resubmits answered from the registry with zero
simulations.
"""

from __future__ import annotations

import json

import pytest

from repro.core.export import scaling_to_json
from repro.harness.scenario import run_scenario, scenario_payload
from repro.scenarios import ScenarioSpec
from repro.service.api import ServiceApp
from repro.service.client import ServiceClient
from repro.service.jobs import (
    JobSpecError,
    build_sweep,
    execute_job,
    parse_job_spec,
)
from repro.service.server import ServiceServer

SCENARIO = {
    "workload": "halo2d",
    "params": {"ny": 16, "nx": 16, "steps": 3},
    "machine": {"name": "laptop", "cores": 4},
    "process_counts": [1, 2, 4],
    "base_seed": 11,
}


def tiny_scenario_spec(**scenario_overrides) -> dict:
    """A scenario job spec that simulates in ~20 ms."""
    return {
        "kind": "scenario",
        "client": "tester",
        "scenario": {**SCENARIO, **scenario_overrides},
    }


# -- parsing and keying -----------------------------------------------------


def test_job_key_stable_across_key_order_and_defaults():
    a = parse_job_spec(tiny_scenario_spec())
    shuffled = {k: SCENARIO[k] for k in reversed(list(SCENARIO))}
    b = parse_job_spec({"kind": "scenario", "scenario": shuffled})
    c = parse_job_spec(tiny_scenario_spec(
        reps=1, threads=1, compute_jitter=0.0, faults=None, engine=None))
    assert a.key == b.key == c.key


def test_engine_choice_misses_the_job_registry():
    default = parse_job_spec(tiny_scenario_spec())
    threadfree = parse_job_spec(tiny_scenario_spec(engine="threadfree"))
    threads = parse_job_spec(tiny_scenario_spec(engine="threads"))
    assert len({default.key, threadfree.key, threads.key}) == 3


def test_result_shaping_scenario_fields_change_the_key():
    base = parse_job_spec(tiny_scenario_spec()).key
    assert parse_job_spec(tiny_scenario_spec(base_seed=12)).key != base
    assert parse_job_spec(tiny_scenario_spec(
        faults={"seed": 1, "faults": [
            {"kind": "straggler", "rank": 0, "factor": 2.0}]})).key != base


def test_wall_timeout_stays_out_of_the_key_but_reaches_policy():
    spec = parse_job_spec(tiny_scenario_spec(wall_timeout=45.0))
    assert spec.key == parse_job_spec(tiny_scenario_spec()).key
    assert spec.wall_timeout == 45.0


def test_bad_scenarios_are_rejected_at_submission():
    with pytest.raises(JobSpecError, match="missing 'scenario'"):
        parse_job_spec({"kind": "scenario"})
    with pytest.raises(JobSpecError, match="invalid scenario"):
        parse_job_spec(tiny_scenario_spec(workload="nope"))
    with pytest.raises(JobSpecError, match="invalid scenario"):
        parse_job_spec(tiny_scenario_spec(params={"ny": -4}))
    with pytest.raises(JobSpecError, match="inside the scenario spec"):
        parse_job_spec({**tiny_scenario_spec(), "engine": "threads"})


def test_build_sweep_returns_the_canonical_scenario():
    spec = parse_job_spec(tiny_scenario_spec())
    sspec = build_sweep(spec)
    assert isinstance(sspec, ScenarioSpec)
    assert sspec.workload == "halo2d"
    assert sspec.process_counts == (1, 2, 4)


# -- execution --------------------------------------------------------------


def test_execute_job_is_byte_identical_to_the_library_path(tmp_path):
    spec = parse_job_spec(tiny_scenario_spec())
    served = execute_job(spec)
    sspec = ScenarioSpec.from_dict(tiny_scenario_spec()["scenario"])
    profile, metrics, intervals = run_scenario(sspec)
    direct = scenario_payload(sspec, profile, metrics, intervals)
    assert json.dumps(served, sort_keys=True) == \
        json.dumps(direct, sort_keys=True)
    assert served["profile_json"] == scaling_to_json(profile)


def test_http_scenario_job_end_to_end(server):
    client = ServiceClient(server.url)
    spec = tiny_scenario_spec()
    receipt = client.submit(spec)
    record = client.wait(receipt["job_id"], timeout=60)
    assert record["status"] == "done"

    result = client.result(receipt["job_id"])["result"]
    sspec = ScenarioSpec.from_dict(spec["scenario"])
    profile, metrics, intervals = run_scenario(sspec)
    assert result == scenario_payload(sspec, profile, metrics, intervals)

    served_profile = client.artifact(receipt["job_id"], "profile")
    assert served_profile == json.loads(result["profile_json"])
    metrics_doc = client.artifact(receipt["job_id"], "metrics")
    assert metrics_doc == {"metrics": result["metrics"]}
    report = client.artifact(receipt["job_id"], "report")
    assert "p=" in report or "speedup" in report.lower()
    speedup = client.artifact(receipt["job_id"], "speedup")
    assert speedup["rows"]
    bounds = client.artifact(receipt["job_id"], "bounds")
    assert bounds["rows"]


def test_warm_scenario_resubmit_is_zero_simulation(tmp_path):
    cache_dir = tmp_path / "cache"
    spec = tiny_scenario_spec()

    first = ServiceServer(ServiceApp(cache_dir=cache_dir, workers=1))
    first.start()
    try:
        client = ServiceClient(first.url)
        job_id = client.submit(spec)["job_id"]
        client.wait(job_id, timeout=60)
        original = client.result(job_id)["result"]
    finally:
        first.stop()

    second_app = ServiceApp(cache_dir=cache_dir, workers=1)
    second = ServiceServer(second_app)
    second.start()
    try:
        client = ServiceClient(second.url)
        # Spelled-out defaults must land on the same registry record.
        receipt = client.submit(tiny_scenario_spec(reps=1, threads=1))
        assert receipt["cached"] is True
        assert receipt["job_id"] == job_id
        assert client.result(job_id)["result"] == original
        assert second_app.metrics.counter("jobs_submitted") == 0
        assert second_app.metrics.counter("registry_hits") == 1
    finally:
        second.stop()


def test_engine_flip_is_not_served_from_the_warm_registry(server):
    client = ServiceClient(server.url)
    a = client.submit(tiny_scenario_spec(engine="threadfree"))
    b = client.submit(tiny_scenario_spec(engine="threads"))
    assert a["job_id"] != b["job_id"]
    ra = client.wait(a["job_id"], timeout=60)
    rb = client.wait(b["job_id"], timeout=60)
    assert ra["status"] == rb["status"] == "done"
    # Same physics on both engines: identical profiles, distinct jobs.
    pa = client.result(a["job_id"])["result"]["profile_json"]
    pb = client.result(b["job_id"])["result"]["profile_json"]
    assert pa == pb
