"""Service lifecycle: draining shutdown, worker crashes, sustained load."""

from __future__ import annotations

import json
import time

import pytest

import repro.service.scheduler as scheduler_mod
from repro.service.api import ServiceApp
from repro.service.jobs import parse_job_spec

from tests.service.conftest import tiny_conv_spec


def _submit(app, spec):
    status, _, body = app.handle("POST", "/api/v1/jobs", {},
                                 json.dumps(spec).encode())
    return status, json.loads(body)


def _wait_terminal(job, timeout=30.0):
    assert job.done_event.wait(timeout), "job never reached a terminal state"


def test_graceful_shutdown_drains_running_and_cancels_queued(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1)
    app.start()
    # a job big enough to still be running when we pull the plug
    running_spec = tiny_conv_spec(
        workload={"height": 128, "width": 192, "steps": 40},
        process_counts=[1, 2, 4, 8], reps=2, base_seed=1,
    )
    _, first = _submit(app, running_spec)
    _, second = _submit(app, tiny_conv_spec(base_seed=2, client="other"))
    running = app.queue.get(first["job_id"])
    for _ in range(500):
        if running.state == "running":
            break
        time.sleep(0.01)
    assert running.state == "running"
    queued = app.queue.get(second["job_id"])

    app.close(drain=True)

    # the running job was drained to completion and persisted
    assert running.state == "done"
    record = app.registry.get(first["job_id"])
    assert record["status"] == "done"
    assert record["result"]["kind"] == "convolution"
    # the queued job was cancelled, recorded, and its waiters released
    assert queued.state == "cancelled"
    assert queued.done_event.is_set()
    assert app.registry.get(second["job_id"])["status"] == "cancelled"
    assert app.metrics.counter("jobs_cancelled") == 1
    # and the service refuses new work
    status, body = _submit(app, tiny_conv_spec(base_seed=3))
    assert status == 503


def test_worker_crash_yields_failed_record_not_hung_client(
        tmp_path, monkeypatch):
    """An unexpected executor death becomes a failed-job record."""
    def boom(spec, **kwargs):
        raise RuntimeError("worker exploded mid-job")

    monkeypatch.setattr(scheduler_mod, "execute_job", boom)
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1)
    app.start()
    try:
        _, receipt = _submit(app, tiny_conv_spec())
        job = app.queue.get(receipt["job_id"])
        _wait_terminal(job)
        assert job.state == "failed"
        assert job.error["error_type"] == "RuntimeError"
        record = app.registry.get(receipt["job_id"])
        assert record["status"] == "failed"
        assert "exploded" in record["error"]["message"]
        assert "traceback" in record["error"]
        assert app.metrics.counter("jobs_failed") == 1
        # the result endpoint reports the failure instead of hanging
        status, _, body = app.handle(
            "GET", f"/api/v1/jobs/{receipt['job_id']}/result")
        assert status == 410
        assert json.loads(body)["status"] == "failed"
    finally:
        app.close()


def test_failed_record_is_not_served_as_warm_hit(tmp_path, monkeypatch):
    """A resubmit after a failure re-runs instead of replaying the error."""
    calls = {"n": 0}
    real = scheduler_mod.execute_job

    def flaky(spec, **kwargs):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return real(spec, **kwargs)

    monkeypatch.setattr(scheduler_mod, "execute_job", flaky)
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1)
    app.start()
    try:
        _, receipt = _submit(app, tiny_conv_spec())
        first_job = app.queue.get(receipt["job_id"])
        _wait_terminal(first_job)
        assert first_job.state == "failed"
        deadline = time.time() + 30
        while app.queue.get(receipt["job_id"]) is not None:
            assert time.time() < deadline  # wait for the slot to free
            time.sleep(0.01)
        status, body = _submit(app, tiny_conv_spec())
        assert status == 202 and body["cached"] is False
        deadline = time.time() + 30
        while app.registry.get(receipt["job_id"])["status"] != "done":
            assert time.time() < deadline
            time.sleep(0.01)
        assert calls["n"] == 2
    finally:
        app.close()


def test_sustains_eight_in_flight_jobs_with_limits_enforced(tmp_path):
    """The ISSUE acceptance bar: >= 8 concurrent in-flight sweep jobs,
    per-client limits enforced, all completing correctly."""
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=4,
                     queue_limit=64, per_client=8)
    # submit before starting workers so "8 in flight" is exact, not racy
    ids = []
    for seed in range(1, 9):
        status, body = _submit(
            app, tiny_conv_spec(base_seed=seed, client="load"))
        assert status == 202
        ids.append(body["job_id"])
    assert len(set(ids)) == 8
    assert app.queue.in_flight() == 8
    # the ninth from the same client trips the per-client limit…
    status, body = _submit(app, tiny_conv_spec(base_seed=9, client="load"))
    assert status == 429
    # …while another client still gets in (fairness, not global stop)
    status, body = _submit(app, tiny_conv_spec(base_seed=9, client="solo"))
    assert status == 202
    ids.append(body["job_id"])

    app.start()
    try:
        jobs = [app.queue.get(i) for i in ids]
        for job in jobs:
            if job is not None:
                _wait_terminal(job)
        for job_id in ids:
            assert app.registry.get(job_id)["status"] == "done"
        assert app.metrics.counter("jobs_completed") == 9
        snap = app.metrics.snapshot()
        assert snap["latency"]["count"] == 9
        assert snap["latency"]["p95"] > 0
    finally:
        app.close()


def test_rejected_jobs_do_not_leak_queue_slots(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1,
                     queue_limit=2, per_client=2)
    _submit(app, tiny_conv_spec(base_seed=1))
    _submit(app, tiny_conv_spec(base_seed=2))
    for seed in (3, 4, 5):
        status, _ = _submit(app, tiny_conv_spec(base_seed=seed))
        assert status == 429
    assert app.queue.in_flight() == 2
    assert app.metrics.counter("jobs_rejected") == 3
    app.close()
