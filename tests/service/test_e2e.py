"""End-to-end over live HTTP: byte-identical results, faults, warm cache.

These tests exercise the full stack — ``ServiceClient`` → real socket →
``ServiceServer`` → ``ServiceApp`` → scheduler → harness — and pin the
service's core promise: what the server returns is *byte-identical* to
what a direct call to the harness entry points produces, including under
an injected :class:`~repro.faults.FaultPlan`, and a warm resubmit is
answered from the registry with zero simulations.
"""

from __future__ import annotations

import json

import pytest

from repro.core.export import scaling_to_json
from repro.errors import ReproError
from repro.harness.runner import run_convolution_sweep, run_lulesh_grid
from repro.service.api import ServiceApp
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import build_sweep, hybrid_to_points, parse_job_spec
from repro.service.server import ServiceServer

from tests.service.conftest import tiny_conv_spec, tiny_lulesh_spec

FAULTY_SPEC_OVERRIDES = {
    "base_seed": 7,
    "faults": {
        "seed": 1,
        "faults": [{"kind": "straggler", "rank": 0, "factor": 2.0}],
    },
}


def test_http_convolution_result_is_byte_identical(server):
    client = ServiceClient(server.url)
    spec = tiny_conv_spec()
    receipt = client.submit(spec)
    record = client.wait(receipt["job_id"], timeout=60)
    assert record["status"] == "done"

    result = client.result(receipt["job_id"])["result"]
    direct = run_convolution_sweep(build_sweep(parse_job_spec(spec)))
    assert result["profile_json"] == scaling_to_json(direct)

    # the profile artifact re-serves the same stored document
    profile = client.artifact(receipt["job_id"], "profile")
    assert profile == json.loads(result["profile_json"])


def test_http_lulesh_result_is_byte_identical(server):
    client = ServiceClient(server.url)
    spec = tiny_lulesh_spec()
    receipt = client.submit(spec)
    record = client.wait(receipt["job_id"], timeout=60)
    assert record["status"] == "done"

    result = client.result(receipt["job_id"])["result"]
    sweep, sides = build_sweep(parse_job_spec(spec))
    analysis, drifts = run_lulesh_grid(sweep, sides=sides)
    assert json.dumps(result["points"]) == json.dumps(hybrid_to_points(analysis))
    assert result["drifts"] == {
        f"{p},{t}": d for (p, t), d in sorted(drifts.items())
    }

    surface = client.artifact(receipt["job_id"], "efficiency")
    assert surface["rows"]


def test_http_faultplan_job_matches_direct_faulted_run(server):
    """A FaultPlan travels through the JSON spec and changes the result
    exactly the way it changes a direct harness call."""
    client = ServiceClient(server.url)
    faulty = tiny_conv_spec(**FAULTY_SPEC_OVERRIDES)
    clean = tiny_conv_spec(base_seed=7)

    faulty_id = client.submit(faulty)["job_id"]
    clean_id = client.submit(clean)["job_id"]
    assert faulty_id != clean_id  # faults are part of the content key
    client.wait(faulty_id, timeout=60)
    client.wait(clean_id, timeout=60)

    faulty_json = client.result(faulty_id)["result"]["profile_json"]
    clean_json = client.result(clean_id)["result"]["profile_json"]
    direct = run_convolution_sweep(build_sweep(parse_job_spec(faulty)))
    assert faulty_json == scaling_to_json(direct)
    assert faulty_json != clean_json  # the straggler left a mark


def test_warm_resubmit_is_served_with_zero_simulations(tmp_path):
    """A second service instance on the same cache dir answers a repeat
    submit straight from the registry — no queue, no workers, no sweep."""
    cache_dir = tmp_path / "cache"
    spec = tiny_conv_spec()

    first = ServiceServer(ServiceApp(cache_dir=cache_dir, workers=1))
    first.start()
    try:
        client = ServiceClient(first.url)
        job_id = client.submit(spec)["job_id"]
        client.wait(job_id, timeout=60)
        original = client.result(job_id)["result"]
    finally:
        first.stop()

    # fresh process-equivalent: new app, new metrics, same disk state
    second_app = ServiceApp(cache_dir=cache_dir, workers=1)
    second = ServiceServer(second_app)
    second.start()
    try:
        client = ServiceClient(second.url)
        receipt = client.submit(spec)
        assert receipt["cached"] is True
        assert receipt["job_id"] == job_id
        served = client.result(job_id)["result"]
        assert served == original
        # nothing was enqueued, scheduled, or simulated on the new app
        assert second_app.metrics.counter("jobs_submitted") == 0
        assert second_app.metrics.counter("jobs_completed") == 0
        assert second_app.metrics.counter("registry_hits") == 1
        assert second_app.queue.in_flight() == 0
        text = client.metrics_text()
        assert "repro_registry_hits_total 1" in text
        assert "repro_jobs_completed_total 0" in text
    finally:
        second.stop()


def test_progress_streams_over_http(server):
    client = ServiceClient(server.url)
    job_id = client.submit(tiny_conv_spec())["job_id"]
    lines = list(client.stream_progress(job_id, poll_wait=2.0))
    assert len(lines) == 3
    assert all(line.startswith("convolution p=") for line in lines)
    assert client.wait(job_id, timeout=60)["status"] == "done"


def test_metrics_scrape_is_nonzero_after_traffic(server):
    client = ServiceClient(server.url)
    job_id = client.submit(tiny_conv_spec())["job_id"]
    client.wait(job_id, timeout=60)
    text = client.metrics_text()
    assert "repro_jobs_submitted_total 1" in text
    assert "repro_jobs_completed_total 1" in text
    assert "repro_job_latency_seconds_count 1" in text
    assert 'repro_job_latency_seconds{quantile="0.95"}' in text


def test_client_surfaces_http_errors_with_status(server):
    client = ServiceClient(server.url)
    with pytest.raises(ServiceClientError) as excinfo:
        client.submit({"kind": "warp-drive"})
    assert excinfo.value.status == 400
    with pytest.raises(ServiceClientError) as excinfo:
        client.result("0" * 64)
    assert excinfo.value.status == 404


def test_client_unreachable_server_raises_repro_error():
    client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
    with pytest.raises(ReproError):
        client.health()
