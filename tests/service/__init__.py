"""Tests for the repro.service analysis-as-a-service subsystem."""
