"""Registry persistence: round-trips, schema gating, corruption, listing."""

from __future__ import annotations

import json

from repro.service.jobs import parse_job_spec
from repro.service.queue import Job
from repro.service.registry import (
    REGISTRY_SCHEMA_VERSION,
    ExperimentRegistry,
)

from tests.service.conftest import tiny_conv_spec


def _finished_job(seed=100):
    job = Job(parse_job_spec(tiny_conv_spec(base_seed=seed)))
    job.mark_running()
    job.finish({"kind": "convolution", "profile_json": "{}"})
    return job


def test_record_round_trip(tmp_path):
    reg = ExperimentRegistry(root=tmp_path)
    job = _finished_job()
    reg.put(ExperimentRegistry.make_record(job, result=job.result))
    rec = reg.get(job.key)
    assert rec["status"] == "done"
    assert rec["key"] == job.key
    assert rec["result"]["kind"] == "convolution"
    assert rec["spec"]["kind"] == "convolution"
    assert rec["duration"] >= 0
    assert reg.hits == 1 and reg.stores == 1


def test_miss_and_delete(tmp_path):
    reg = ExperimentRegistry(root=tmp_path)
    assert reg.get("0" * 64) is None
    assert reg.misses == 1
    job = _finished_job()
    reg.put(ExperimentRegistry.make_record(job, result=job.result))
    assert reg.delete(job.key)
    assert not reg.delete(job.key)
    assert reg.get(job.key) is None


def test_wrong_schema_is_invisible(tmp_path):
    reg = ExperimentRegistry(root=tmp_path)
    job = _finished_job()
    reg.put(ExperimentRegistry.make_record(job, result=job.result))
    path = reg.path_for(job.key)
    envelope = json.loads(path.read_text())
    envelope["schema"] = REGISTRY_SCHEMA_VERSION + 1
    path.write_text(json.dumps(envelope))
    assert reg.get(job.key) is None
    assert reg.corrupt == 1


def test_corrupt_json_is_invisible(tmp_path):
    reg = ExperimentRegistry(root=tmp_path)
    job = _finished_job()
    reg.put(ExperimentRegistry.make_record(job, result=job.result))
    reg.path_for(job.key).write_text("{truncated")
    assert reg.get(job.key) is None
    assert reg.corrupt == 1


def test_listing_is_summary_only_and_sorted(tmp_path):
    reg = ExperimentRegistry(root=tmp_path)
    first = _finished_job(seed=1)
    second = _finished_job(seed=2)
    second.submitted_at = first.submitted_at + 10  # force ordering
    reg.put(ExperimentRegistry.make_record(first, result=first.result))
    reg.put(ExperimentRegistry.make_record(second, result=second.result))
    records = reg.list_records()
    assert [r["job_id"] for r in records] == [second.key, first.key]
    assert all("result" not in r for r in records)
    assert records[0]["status"] == "done"


def test_stats_counts_entries(tmp_path):
    reg = ExperimentRegistry(root=tmp_path)
    assert reg.stats()["entries"] == 0
    job = _finished_job()
    reg.put(ExperimentRegistry.make_record(job, result=job.result))
    stats = reg.stats()
    assert stats["entries"] == 1 and stats["stores"] == 1


def test_registry_dir_is_invisible_to_run_cache(tmp_path):
    """Registry records must not leak into run-cache stats/clear globs."""
    from repro.harness.cache import RunCache

    cache = RunCache(root=tmp_path)
    cache.put("ab" + "0" * 62, {"profile": {}})
    reg = ExperimentRegistry(root=cache.root / "registry")
    job = _finished_job()
    reg.put(ExperimentRegistry.make_record(job, result=job.result))
    assert cache.stats()["entries"] == 1
    assert cache.clear() == 1
    assert reg.get(job.key) is not None
