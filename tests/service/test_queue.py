"""Admission control: backpressure, per-client limits, deduplication."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.service.jobs import parse_job_spec
from repro.service.queue import ClientLimitError, JobQueue, QueueFullError

from tests.service.conftest import tiny_conv_spec


def _spec(seed=100, client="tester"):
    return parse_job_spec(tiny_conv_spec(base_seed=seed, client=client))


def test_fifo_order_and_depth():
    q = JobQueue(limit=8, per_client=8)
    j1, _ = q.submit(_spec(1))
    j2, _ = q.submit(_spec(2))
    assert q.depth() == 2 and q.in_flight() == 2
    assert q.next_job(timeout=0) is j1
    assert q.next_job(timeout=0) is j2
    assert q.next_job(timeout=0) is None
    # popped jobs stay tracked (running) until forgotten
    assert q.in_flight() == 2
    q.forget(j1)
    q.forget(j2)
    assert q.in_flight() == 0


def test_bounded_queue_backpressure():
    q = JobQueue(limit=2, per_client=8)
    q.submit(_spec(1))
    q.submit(_spec(2))
    with pytest.raises(QueueFullError):
        q.submit(_spec(3))


def test_per_client_limit_is_per_client():
    q = JobQueue(limit=8, per_client=2)
    q.submit(_spec(1, client="a"))
    q.submit(_spec(2, client="a"))
    with pytest.raises(ClientLimitError):
        q.submit(_spec(3, client="a"))
    # a different client still gets in
    job, created = q.submit(_spec(3, client="b"))
    assert created and job.spec.client == "b"


def test_limit_slot_freed_after_forget():
    q = JobQueue(limit=8, per_client=1)
    job, _ = q.submit(_spec(1))
    with pytest.raises(ClientLimitError):
        q.submit(_spec(2))
    q.next_job(timeout=0)
    q.forget(job)
    q.submit(_spec(2))  # slot released


def test_duplicate_in_flight_submits_coalesce():
    q = JobQueue(limit=8, per_client=8)
    j1, created1 = q.submit(_spec(1))
    j2, created2 = q.submit(_spec(1, client="other"))
    assert created1 and not created2
    assert j1 is j2
    assert q.in_flight() == 1
    # dedup also covers *running* jobs (popped but not forgotten)
    assert q.next_job(timeout=0) is j1
    j3, created3 = q.submit(_spec(1))
    assert j3 is j1 and not created3


def test_close_drains_queued_jobs_and_refuses_new():
    q = JobQueue(limit=8, per_client=8)
    job, _ = q.submit(_spec(1))
    drained = q.close()
    assert drained == [job]
    # cancellation is the scheduler's job (it persists the record first)
    assert job.state == "queued"
    assert not job.done_event.is_set()
    assert q.in_flight() == 0
    with pytest.raises(ReproError):
        q.submit(_spec(2))


def test_job_progress_cursor():
    q = JobQueue()
    job, _ = q.submit(_spec(1))
    job.add_progress("one")
    job.add_progress("two")
    chunk = job.progress_since(0)
    assert chunk["lines"] == ["one", "two"] and chunk["next"] == 2
    assert not chunk["done"]
    chunk = job.progress_since(2)
    assert chunk["lines"] == []
    job.finish({"kind": "convolution"})
    assert job.progress_since(2)["done"]


def test_invalid_limits_rejected():
    with pytest.raises(ReproError):
        JobQueue(limit=0)
    with pytest.raises(ReproError):
        JobQueue(per_client=0)
