"""Supervised multi-process workers: healing, poison, deadlines, shedding."""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.service.api import ServiceApp
from repro.service.jobs import parse_job_spec
from repro.service.supervisor import POISON_ENV

from tests.service.conftest import tiny_conv_spec


def _submit(app, spec, query=None):
    status, headers, body = app.handle("POST", "/api/v1/jobs", query or {},
                                       json.dumps(spec).encode())
    return status, json.loads(body)


def _wait_done(app, key, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = app.queue.get(key)
        if job is not None:
            if job.done_event.wait(0.2):
                return job.state
            continue
        record = app.registry.get(key)
        if record is not None and record["status"] not in ("queued", "running"):
            return record["status"]
        time.sleep(0.05)
    raise AssertionError(f"job {key[:12]} not terminal after {timeout}s")


@pytest.fixture
def process_app(tmp_path):
    """A process-mode app with fast recovery knobs; stopped at teardown."""
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=2,
                     worker_mode="process", retry_budget=2,
                     retry_backoff=0.05, chaos_seed=7)
    app.start()
    yield app
    app.close()


def test_process_mode_serves_byte_identical_results(tmp_path):
    spec = tiny_conv_spec(base_seed=41)
    thread_app = ServiceApp(cache_dir=tmp_path / "thread-cache",
                            workers=1, worker_mode="thread")
    process_app = ServiceApp(cache_dir=tmp_path / "process-cache",
                             workers=1, worker_mode="process")
    results = {}
    for name, app in (("thread", thread_app), ("process", process_app)):
        app.start()
        try:
            _, receipt = _submit(app, spec)
            assert _wait_done(app, receipt["job_id"]) == "done"
            record = app.registry.get(receipt["job_id"])
            results[name] = json.dumps(record["result"], sort_keys=True)
        finally:
            app.close()
    assert results["thread"] == results["process"]


def test_sigkilled_worker_is_replaced_and_job_requeued(process_app):
    app = process_app
    # big enough to still be running when the worker is shot
    spec = tiny_conv_spec(
        workload={"height": 128, "width": 192, "steps": 40},
        process_counts=[1, 2, 4, 8], reps=2, base_seed=11,
    )
    _, receipt = _submit(app, spec)
    key = receipt["job_id"]
    job = app.queue.get(key)
    deadline = time.time() + 30
    victims = []
    while not victims:
        assert time.time() < deadline, "no worker ever claimed the job"
        victims = [h.process.pid for h in app.scheduler._handles
                   if h.job is not None and h.job.key == key]
        time.sleep(0.01)
    os.kill(victims[0], signal.SIGKILL)

    assert _wait_done(app, key) == "done"
    record = app.registry.get(key)
    assert record["status"] == "done"
    assert record["result"]["kind"] == "convolution"
    assert app.metrics.counter("worker_restarts") >= 1
    assert app.metrics.counter("jobs_requeued") >= 1
    assert app.metrics.counter("jobs_completed") == 1
    assert job.attempts >= 2  # the retry is visible in job history


def test_poison_job_trips_circuit_breaker(tmp_path, monkeypatch):
    spec = tiny_conv_spec(base_seed=13)
    key = parse_job_spec(spec).key
    monkeypatch.setenv(POISON_ENV, key[:16])
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1,
                     worker_mode="process", retry_budget=1,
                     retry_backoff=0.02, chaos_seed=3)
    app.start()
    try:
        _, receipt = _submit(app, spec)
        assert receipt["job_id"] == key
        assert _wait_done(app, key) == "poisoned"
        record = app.registry.get(key)
        assert record["status"] == "poisoned"
        assert record["error"]["error_type"] == "PoisonedJob"
        assert app.metrics.counter("jobs_poisoned") == 1
        assert app.metrics.counter("worker_restarts") >= 2
        # the result endpoint reports the quarantine, not a hang
        status, _, body = app.handle("GET", f"/api/v1/jobs/{key}/result")
        assert status == 410
        assert json.loads(body)["status"] == "poisoned"
        # a healthy job still completes on the healed pool
        monkeypatch.delenv(POISON_ENV)
        _, receipt2 = _submit(app, tiny_conv_spec(base_seed=14))
        assert _wait_done(app, receipt2["job_id"]) == "done"
    finally:
        app.close()


def test_supervisor_fails_deadline_expired_queued_job(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1,
                     worker_mode="process")
    _, receipt = _submit(app, tiny_conv_spec(base_seed=18, deadline=0.01))
    time.sleep(0.05)
    app.start()
    try:
        assert _wait_done(app, receipt["job_id"]) == "failed"
        record = app.registry.get(receipt["job_id"])
        assert record["error"]["error_type"] == "DeadlineExceeded"
    finally:
        app.close()


def test_deadline_tightens_the_engine_watchdog():
    spec = parse_job_spec(tiny_conv_spec(wall_timeout=60.0, deadline=5.0))
    assert spec.effective_wall_timeout() == 5.0
    spec = parse_job_spec(tiny_conv_spec(wall_timeout=2.0, deadline=5.0))
    assert spec.effective_wall_timeout() == 2.0
    spec = parse_job_spec(tiny_conv_spec())
    assert spec.effective_wall_timeout() is None


def test_deadline_and_priority_stay_out_of_the_content_key():
    base = parse_job_spec(tiny_conv_spec())
    tuned = parse_job_spec(tiny_conv_spec(priority="interactive",
                                          deadline=30.0))
    assert base.key == tuned.key  # execution policy never forks the cache


def test_interactive_submit_sheds_newest_batch_job(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1,
                     queue_limit=2, per_client=8)
    _, first = _submit(app, tiny_conv_spec(base_seed=21))
    _, second = _submit(app, tiny_conv_spec(base_seed=22))
    victim = app.queue.get(second["job_id"])
    # a batch submit is refused outright...
    status, _ = _submit(app, tiny_conv_spec(base_seed=23))
    assert status == 429
    # ...but an interactive one sheds the newest batch job and gets in
    status, receipt = _submit(
        app, tiny_conv_spec(base_seed=24, priority="interactive"))
    assert status == 202
    assert victim.state == "cancelled"
    assert "shed" in victim.error["message"]
    assert app.registry.get(second["job_id"])["status"] == "cancelled"
    assert app.metrics.counter("jobs_shed") == 1
    # the survivor (oldest batch) is untouched
    assert app.queue.get(first["job_id"]).state == "queued"
    # with no batch work left to shed, interactive also gets 429
    status, _ = _submit(
        app, tiny_conv_spec(base_seed=25, priority="interactive"))
    status, _ = _submit(
        app, tiny_conv_spec(base_seed=26, priority="interactive"))
    assert status == 429
    app.close()


def test_interactive_jobs_are_claimed_before_batch(tmp_path):
    app = ServiceApp(cache_dir=tmp_path / "cache", workers=1)
    _, batch = _submit(app, tiny_conv_spec(base_seed=31))
    _, inter = _submit(app, tiny_conv_spec(base_seed=32,
                                           priority="interactive"))
    first = app.queue.next_job(timeout=0)
    assert first.key == inter["job_id"]
    second = app.queue.next_job(timeout=0)
    assert second.key == batch["job_id"]
    app.close()


def test_metrics_expose_resilience_families(process_app):
    status, _, body = process_app.handle("GET", "/metrics")
    text = body.decode()
    assert "repro_worker_restarts_total 0" in text
    assert "repro_jobs_requeued_total 0" in text
    assert "repro_jobs_poisoned_total 0" in text
    assert "repro_jobs_shed_total 0" in text
    assert "repro_jobs_replayed_total 0" in text
    assert "repro_journal_replay_seconds" in text
    assert 'repro_queue_depth{class="interactive"} 0' in text
    assert 'repro_queue_depth{class="batch"} 0' in text
    assert "repro_queue_depth 0" in text
    assert "repro_registry_evictions_total 0" in text
