"""OpenMP cost model: rates, contention, fork/join, inflexion shapes."""

import pytest

from repro.errors import MachineError
from repro.machine.catalog import broadwell_duo, knl_node
from repro.machine.roofline import WorkEstimate
from repro.omp.costmodel import OMPCostModel, OMPParams


@pytest.fixture
def knl():
    return OMPCostModel(knl_node(), ranks_on_node=1)


@pytest.fixture
def bdw():
    return OMPCostModel(broadwell_duo(), ranks_on_node=1)


def test_params_presets_differ():
    knl_p = OMPParams.for_machine(knl_node())
    bdw_p = OMPParams.for_machine(broadwell_duo())
    # "the OpenMP overhead tends to increase more rapidly than on the
    # Broadwell" — KNL fork costs and contention onset are harsher.
    assert knl_p.fork_per_thread > bdw_p.fork_per_thread
    assert knl_p.t_half < bdw_p.t_half


def test_core_allocation_divides_with_ranks():
    m = OMPCostModel(knl_node(), ranks_on_node=27)
    assert m.cores_avail == 2
    assert m.hw_avail == 8


def test_raw_flop_rate_monotone_until_oversubscription(knl):
    rates = [knl.raw_flop_rate(t) for t in (1, 2, 34, 68, 136, 272)]
    assert all(b > a for a, b in zip(rates, rates[1:]))


def test_oversubscription_reduces_rate():
    m = OMPCostModel(knl_node(), ranks_on_node=4)  # 17 cores, 68 hw threads
    assert m.raw_flop_rate(m.hw_avail * 2) < m.raw_flop_rate(m.hw_avail)


def test_contention_grows_with_node_threads(knl):
    assert knl.contention_factor(4) < knl.contention_factor(32)
    m27 = OMPCostModel(knl_node(), ranks_on_node=27)
    # 27 ranks × 2 threads = 54 node threads: more contention than 1×2.
    assert m27.contention_factor(2) > knl.contention_factor(2)


def test_bandwidth_mpi_scaling_property():
    """p ranks × 1 thread draw ~p× the bandwidth of 1 rank × 1 thread
    (until saturation) — the key MPI-vs-OpenMP asymmetry."""
    one = OMPCostModel(knl_node(), ranks_on_node=1)
    eight = OMPCostModel(knl_node(), ranks_on_node=8)
    assert eight.bandwidth(1) == pytest.approx(one.bandwidth(1))
    # 8 ranks × 2 threads have already saturated their fair share.
    assert eight.bandwidth(4) <= knl_node().node.mem_bandwidth / 8


def test_fork_join_zero_at_one_thread(knl):
    assert knl.fork_join(1) == 0.0
    assert knl.fork_join(16) > knl.fork_join(2)


def test_imbalance_static_schedule():
    assert OMPCostModel.imbalance(100, 1) == 1.0
    assert OMPCostModel.imbalance(100, 8) == pytest.approx(13 / 12.5)
    assert OMPCostModel.imbalance(3, 8) == pytest.approx(8 / 3)
    assert OMPCostModel.imbalance(64, 8) == 1.0


def test_region_time_u_shape_on_knl(knl):
    """The Figure 10 behaviour: time falls, bottoms out, then rises."""
    w = WorkEstimate(flops=2e10, bytes_moved=2e9, serial_fraction=0.03)
    times = {t: knl.region_time(w, t) for t in (1, 8, 16, 24, 64, 200)}
    assert times[8] < times[1]
    tmin = min(times.values())
    assert times[200] > 2 * tmin  # clearly past the inflexion
    best = knl.best_thread_count(w, max_threads=64)
    assert 8 <= best <= 48


def test_broadwell_scales_further_than_knl(knl, bdw):
    w = WorkEstimate(flops=2e10, bytes_moved=2e9, serial_fraction=0.03)
    best_knl = knl.best_thread_count(w, max_threads=64)
    best_bdw = bdw.best_thread_count(w, max_threads=64)
    assert bdw.region_time(w, 32) < bdw.region_time(w, 1)
    assert best_bdw >= best_knl * 0.75  # Broadwell at least comparable


def test_memory_bound_work_flattens_early(knl):
    w = WorkEstimate(flops=1e8, bytes_moved=5e10)
    t12 = knl.region_time(w, knl.params.bw_sat)
    t24 = knl.region_time(w, 2 * knl.params.bw_sat)
    # No meaningful gain past the bandwidth knee.
    assert t24 > 0.8 * t12


def test_serial_fraction_caps_speedup(knl):
    w = WorkEstimate(flops=1e10, serial_fraction=0.1)
    s = knl.region_time(w, 1) / knl.region_time(w, 16)
    assert s < 1 / 0.1  # Amdahl ceiling


def test_invalid_inputs(knl):
    with pytest.raises(MachineError):
        knl.raw_flop_rate(0)
    with pytest.raises(MachineError):
        OMPCostModel(knl_node(), ranks_on_node=0)


def test_with_overrides():
    p = OMPParams().with_overrides(t_half=10.0)
    assert p.t_half == 10.0
    assert p.fork_base == OMPParams().fork_base
