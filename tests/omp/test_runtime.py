"""The OpenMP runtime object inside rank contexts."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.catalog import knl_node
from repro.machine.roofline import WorkEstimate
from repro.omp import OpenMP
from repro.simmpi.engine import run_mpi


def _run(main, n_ranks=1, machine=None, **kw):
    return run_mpi(n_ranks, main, machine=machine or knl_node(),
                   ranks_per_node=n_ranks, **kw)


def test_parallel_for_executes_every_chunk_once():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=4)
        arr = np.zeros(100)

        def body(lo, hi):
            arr[lo:hi] += 1

        omp.parallel_for(100, body, work=WorkEstimate(flops=1e6))
        return arr.copy()

    res = _run(main)
    assert np.array_equal(res.results[0], np.ones(100))


def test_parallel_for_charges_model_time():
    w = WorkEstimate(flops=2.4e9)  # 1 s at one KNL thread

    def main(ctx):
        omp = OpenMP(ctx, nthreads=1)
        omp.parallel_for(10, None, work=w)
        return ctx.now

    res = _run(main)
    assert res.results[0] == pytest.approx(1.0, rel=0.05)


def test_more_threads_less_time_until_inflexion():
    w = WorkEstimate(flops=2.4e10)

    def make(nt):
        def main(ctx):
            OpenMP(ctx, nthreads=nt).parallel_for(1000, None, work=w)
            return ctx.now

        return main

    t1 = _run(make(1)).walltime
    t8 = _run(make(8)).walltime
    t256 = _run(make(256)).walltime
    assert t8 < t1 / 4
    assert t256 > t8  # far past the inflexion point


def test_region_counters():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=2)
        omp.parallel_for(10, None, work=WorkEstimate(flops=1e6))
        omp.parallel_region(WorkEstimate(flops=1e6))
        return (omp.regions, omp.parallel_time)

    res = _run(main)
    regions, ptime = res.results[0]
    assert regions == 2 and ptime > 0


def test_single_runs_on_one_thread_with_barrier():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=8)
        flag = []
        omp.single(lambda: flag.append(1), work=WorkEstimate(flops=2.4e9))
        return (flag, ctx.now)

    res = _run(main)
    flag, now = res.results[0]
    assert flag == [1]
    assert now >= 1.0  # one-thread time, not /8


def test_barrier_charges_fork_join():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=16)
        omp.barrier()
        return ctx.now

    res = _run(main)
    assert res.results[0] > 0


def test_ranks_on_node_inferred_from_engine():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=1)
        return omp.model.ranks_on_node

    res = _run(main, n_ranks=4)
    assert res.results == [4, 4, 4, 4]


def test_efficiency_below_one():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=16)
        return omp.efficiency(WorkEstimate(flops=1e10, serial_fraction=0.05))

    res = _run(main)
    assert 0.0 < res.results[0] < 1.0


def test_invalid_thread_count():
    def main(ctx):
        OpenMP(ctx, nthreads=0)

    from repro.errors import RankFailedError

    with pytest.raises(RankFailedError) as ei:
        _run(main)
    assert isinstance(ei.value.original, MachineError)


def test_chunking_does_not_change_results():
    """Deferred-write kernels give identical results at any team size."""

    def make(nt):
        def main(ctx):
            omp = OpenMP(ctx, nthreads=nt)
            arr = np.arange(64.0)
            out = np.zeros(64)

            def body(lo, hi):
                out[lo:hi] = arr[lo:hi] * 2

            omp.parallel_for(64, body, work=WorkEstimate(flops=64))
            return out

        return main

    r1 = _run(make(1)).results[0]
    r7 = _run(make(7)).results[0]
    assert np.array_equal(r1, r7)


def test_parallel_reduce_deterministic_across_team_sizes():
    import numpy as np
    data = np.arange(1000, dtype=np.int64)

    def make(nt):
        def main(ctx):
            omp = OpenMP(ctx, nthreads=nt)
            return omp.parallel_reduce(
                1000,
                lambda lo, hi: int(data[lo:hi].sum()),
                lambda a, b: a + b,
                work=WorkEstimate(flops=1000),
            )
        return main

    r1 = _run(make(1)).results[0]
    r7 = _run(make(7)).results[0]
    assert r1 == r7 == int(data.sum())


def test_parallel_reduce_max_and_empty():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=4)
        vals = [3, 1, 4, 1, 5, 9, 2, 6]
        biggest = omp.parallel_reduce(
            8, lambda lo, hi: max(vals[lo:hi]), max,
            work=WorkEstimate(flops=8),
        )
        empty = omp.parallel_reduce(
            0, lambda lo, hi: 0, max, work=WorkEstimate(flops=0)
        )
        return (biggest, empty)

    res = _run(main)
    assert res.results[0] == (9, None)


def test_parallel_reduce_charges_time():
    def main(ctx):
        omp = OpenMP(ctx, nthreads=2)
        omp.parallel_reduce(
            10, lambda lo, hi: 0, lambda a, b: a,
            work=WorkEstimate(flops=2.4e9),
        )
        return ctx.now

    res = _run(main)
    assert res.results[0] > 0.1
