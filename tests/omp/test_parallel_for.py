"""Loop chunking: coverage, disjointness, schedule semantics."""

import pytest

from repro.errors import MachineError
from repro.omp.parallel_for import chunk_ranges, iter_chunks


def _covered(chunks, n):
    seen = []
    for _, lo, hi in chunks:
        seen.extend(range(lo, hi))
    return seen


@pytest.mark.parametrize("n,t", [(10, 3), (7, 7), (100, 8), (5, 8), (1, 1)])
def test_static_covers_exactly_once(n, t):
    chunks = chunk_ranges(n, t, "static")
    assert sorted(_covered(chunks, n)) == list(range(n))


def test_static_default_contiguous_blocks():
    chunks = chunk_ranges(10, 3, "static")
    assert chunks == [(0, 0, 4), (1, 4, 7), (2, 7, 10)]


def test_static_chunked_round_robin():
    chunks = chunk_ranges(10, 2, "static", chunk=3)
    assert chunks == [(0, 0, 3), (1, 3, 6), (0, 6, 9), (1, 9, 10)]


@pytest.mark.parametrize("schedule", ["dynamic", "guided"])
@pytest.mark.parametrize("n,t", [(25, 4), (100, 7), (3, 8)])
def test_other_schedules_cover_exactly_once(schedule, n, t):
    chunks = chunk_ranges(n, t, schedule, chunk=2)
    assert sorted(_covered(chunks, n)) == list(range(n))


def test_guided_blocks_shrink():
    sizes = [hi - lo for _, lo, hi in chunk_ranges(1000, 4, "guided")]
    assert sizes[0] > sizes[-1]
    assert sizes[0] == 1000 // 8


def test_empty_loop():
    assert chunk_ranges(0, 4) == []


def test_threads_idle_when_fewer_iterations():
    chunks = chunk_ranges(2, 8, "static")
    assert len(chunks) == 2
    assert {t for t, _, _ in chunks} == {0, 1}


def test_invalid_arguments():
    with pytest.raises(MachineError):
        chunk_ranges(-1, 2)
    with pytest.raises(MachineError):
        chunk_ranges(5, 0)
    with pytest.raises(MachineError):
        chunk_ranges(5, 2, "static", chunk=0)
    with pytest.raises(MachineError):
        chunk_ranges(5, 2, "bogus")


def test_iter_chunks_yields_ranges():
    assert list(iter_chunks(6, 2)) == [(0, 3), (3, 6)]
