"""Machine specification dataclasses: validation and derived quantities."""

import pytest

from repro.errors import MachineError, OversubscriptionError
from repro.machine.spec import CoreSpec, MachineSpec, NetworkTier, NodeSpec


def _machine(nodes=2, cores=4, hw_threads=2):
    node = NodeSpec(
        sockets=1,
        cores_per_socket=cores,
        core=CoreSpec(flops=1e9, hw_threads=hw_threads, ht_efficiency=0.5),
    )
    return MachineSpec(
        name="t",
        nodes=nodes,
        node=node,
        intra_node=NetworkTier(1e-6, 1e9),
        inter_node=NetworkTier(2e-6, 5e8),
    )


def test_core_thread_throughput_smt_tiers():
    core = CoreSpec(flops=2e9, hw_threads=4, ht_efficiency=0.25)
    assert core.thread_throughput(1) == pytest.approx(2e9)
    assert core.thread_throughput(2) == pytest.approx(2.5e9)
    assert core.thread_throughput(4) == pytest.approx(3.5e9)


def test_core_thread_throughput_overflow_raises():
    core = CoreSpec(hw_threads=2)
    with pytest.raises(OversubscriptionError):
        core.thread_throughput(3)


def test_core_invalid_parameters():
    with pytest.raises(MachineError):
        CoreSpec(flops=0)
    with pytest.raises(MachineError):
        CoreSpec(hw_threads=0)
    with pytest.raises(MachineError):
        CoreSpec(ht_efficiency=1.5)


def test_node_counts():
    node = NodeSpec(sockets=2, cores_per_socket=18,
                    core=CoreSpec(hw_threads=2))
    assert node.physical_cores == 36
    assert node.max_threads == 72
    assert not node.spans_sockets(36)
    assert node.spans_sockets(37)


def test_node_invalid():
    with pytest.raises(MachineError):
        NodeSpec(sockets=0)
    with pytest.raises(MachineError):
        NodeSpec(mem_bandwidth=-1)
    with pytest.raises(MachineError):
        NodeSpec(numa_penalty=0.9)


def test_tier_validation():
    with pytest.raises(MachineError):
        NetworkTier(latency=-1, bandwidth=1e9)
    with pytest.raises(MachineError):
        NetworkTier(latency=0, bandwidth=0)
    with pytest.raises(MachineError):
        NetworkTier(1e-6, 1e9, spike_prob=2.0)
    with pytest.raises(MachineError):
        NetworkTier(1e-6, 1e9, spike_scale=0.5)


def test_machine_totals():
    m = _machine(nodes=3, cores=4, hw_threads=2)
    assert m.total_cores == 12
    assert m.total_hw_threads == 24


def test_node_of_rank_compact_placement():
    m = _machine(nodes=2, cores=4)
    assert m.node_of_rank(0) == 0
    assert m.node_of_rank(3) == 0
    assert m.node_of_rank(4) == 1
    assert m.node_of_rank(5, ranks_per_node=2) == 2


def test_tier_between():
    m = _machine(nodes=2, cores=4)
    assert m.tier_between(0, 3) is m.intra_node
    assert m.tier_between(3, 4) is m.inter_node


def test_validate_ranks():
    m = _machine(nodes=2, cores=4)
    m.validate_ranks(8)
    with pytest.raises(OversubscriptionError):
        m.validate_ranks(9)
    with pytest.raises(OversubscriptionError):
        m.validate_ranks(4, ranks_per_node=5)
