"""Catalog machines match the paper's hardware structure."""

import pytest

from repro.errors import MachineError
from repro.machine.catalog import (
    MACHINE_CATALOG,
    broadwell_duo,
    by_name,
    knl_node,
    laptop,
    nehalem_cluster,
)


def test_nehalem_matches_paper_structure():
    m = nehalem_cluster()
    # "a single eight core Intel Xeon X5560 processor with
    #  hyper-threading disabled" × 57 nodes = 456 cores
    assert m.node.sockets == 1
    assert m.node.cores_per_socket == 8
    assert m.node.core.hw_threads == 1
    assert m.total_cores == 456
    assert m.node.mem_per_node == pytest.approx(24e9)  # "24 GB of memory"


def test_knl_matches_paper_structure():
    m = knl_node()
    # "68 cores with 4 hyper-threads"
    assert m.node.physical_cores == 68
    assert m.node.core.hw_threads == 4
    assert m.node.max_threads == 272
    assert m.nodes == 1


def test_broadwell_matches_paper_structure():
    m = broadwell_duo()
    # "2 sockets with 18 cores with two hyper-threads"
    assert m.node.sockets == 2
    assert m.node.cores_per_socket == 18
    assert m.node.core.hw_threads == 2
    assert m.node.max_threads == 72


def test_inter_node_slower_than_intra():
    for factory in (nehalem_cluster, knl_node, broadwell_duo):
        m = factory()
        assert m.inter_node.latency >= m.intra_node.latency
        assert m.inter_node.bandwidth <= m.intra_node.bandwidth


def test_laptop_configurable():
    assert laptop(2).total_cores == 2
    with pytest.raises(MachineError):
        laptop(0)


def test_by_name_lookup():
    assert by_name("knl").name.startswith("knl")
    with pytest.raises(MachineError):
        by_name("cray")


def test_catalog_complete():
    assert set(MACHINE_CATALOG) == {"nehalem", "knl", "broadwell", "laptop"}
