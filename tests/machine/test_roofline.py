"""Roofline compute-time model."""

import pytest

from repro.errors import MachineError
from repro.machine.roofline import RooflineModel, WorkEstimate
from repro.machine.spec import CoreSpec, NodeSpec


@pytest.fixture
def node():
    return NodeSpec(
        sockets=1,
        cores_per_socket=8,
        core=CoreSpec(flops=1e9, hw_threads=2, ht_efficiency=0.5),
        mem_bandwidth=10e9,
        numa_penalty=1.0,
    )


def test_work_estimate_validation():
    with pytest.raises(MachineError):
        WorkEstimate(flops=-1)
    with pytest.raises(MachineError):
        WorkEstimate(flops=1, serial_fraction=2.0)


def test_work_estimate_add_combines_serial_weighted():
    a = WorkEstimate(flops=100, bytes_moved=10, serial_fraction=0.1)
    b = WorkEstimate(flops=300, bytes_moved=30, serial_fraction=0.5)
    c = a + b
    assert c.flops == 400 and c.bytes_moved == 40
    assert c.serial_fraction == pytest.approx((100 * 0.1 + 300 * 0.5) / 400)


def test_work_estimate_scaled():
    w = WorkEstimate(flops=10, bytes_moved=4, serial_fraction=0.2).scaled(5)
    assert w.flops == 50 and w.bytes_moved == 20 and w.serial_fraction == 0.2


def test_flop_rate_fills_cores_then_smt(node):
    m = RooflineModel(node)
    assert m.flop_rate(1) == pytest.approx(1e9)
    assert m.flop_rate(8) == pytest.approx(8e9)
    assert m.flop_rate(12) == pytest.approx(8e9 + 4 * 0.5e9)
    with pytest.raises(MachineError):
        m.flop_rate(17)


def test_bandwidth_saturates(node):
    m = RooflineModel(node, bw_saturation_threads=4)
    assert m.bandwidth(1) == pytest.approx(2.5e9)
    assert m.bandwidth(4) == pytest.approx(10e9)
    assert m.bandwidth(8) == pytest.approx(10e9)


def test_compute_bound_time(node):
    m = RooflineModel(node)
    t = m.time(WorkEstimate(flops=2e9), nthreads=2)
    assert t == pytest.approx(1.0)


def test_memory_bound_time(node):
    m = RooflineModel(node, bw_saturation_threads=1)
    t = m.time(WorkEstimate(flops=1, bytes_moved=20e9), nthreads=2)
    assert t == pytest.approx(2.0)


def test_roofline_takes_max_of_terms(node):
    m = RooflineModel(node, bw_saturation_threads=1)
    w = WorkEstimate(flops=4e9, bytes_moved=20e9)
    # compute: 4 s at 1 thread; memory: 2 s → compute bound
    assert m.time(w, 1) == pytest.approx(4.0)
    # at 8 threads compute: 0.5 s; memory: 2 s → memory bound
    assert m.time(w, 8) == pytest.approx(2.0)


def test_serial_fraction_floors_scaling(node):
    m = RooflineModel(node)
    w = WorkEstimate(flops=8e9, serial_fraction=0.5)
    t8 = m.time(w, 8)
    # serial half runs at 1 thread (4 s), parallel half at 8 (0.5 s)
    assert t8 == pytest.approx(4.5)


def test_zero_work_zero_time(node):
    assert RooflineModel(node).time(WorkEstimate(flops=0), 4) == 0.0


def test_arithmetic_intensity_knee_positive(node):
    assert RooflineModel(node).arithmetic_intensity_knee() > 0
