"""Doc-sync tests: the documentation's code must actually work.

Two contracts, over ``README.md`` and every ``docs/*.md``:

* every fenced ``python`` block **executes** (blocks in one file run
  cumulatively, in order, sharing a namespace — so a later block may
  use names a ``Quickstart`` block defined);
* every ``python -m repro.cli ...`` line inside ``sh``/``console``
  blocks **parses** against the real argument parsers — flag renames
  that orphan a documented example fail here, not in a user's shell.

Illustrative fragments that are not meant to run (signature tours,
server-required snippets) use bare/``text`` fences, which this module
deliberately ignores.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

import pytest

REPO = Path(__file__).resolve().parents[1]
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda p: p.name,
)

_FENCE = re.compile(r"^```(\S*)\s*$")


def _blocks(path: Path) -> Iterator[Tuple[str, str, int]]:
    """Yield ``(language, body, first_line_number)`` per fenced block."""
    lang = None
    body: List[str] = []
    start = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        fence = _FENCE.match(line)
        if fence and lang is None:
            lang, body, start = fence.group(1).lower(), [], lineno + 1
        elif line.strip() == "```" and lang is not None:
            yield lang, "\n".join(body), start
            lang = None
        elif lang is not None:
            body.append(line)
    assert lang is None, f"{path.name}: unterminated fence opened at {start}"


def _python_blocks(path: Path) -> List[Tuple[str, int]]:
    return [(b, n) for lang, b, n in _blocks(path) if lang == "python"]


def _shell_lines(path: Path) -> List[Tuple[str, int]]:
    """CLI lines from sh/console blocks, continuations joined."""
    lines: List[Tuple[str, int]] = []
    for lang, body, start in _blocks(path):
        if lang not in ("sh", "shell", "bash", "console"):
            continue
        pending, pending_at = "", start
        for off, raw in enumerate(body.splitlines()):
            line = raw.strip()
            if not pending:
                pending_at = start + off
            joined = (pending + " " + line).strip() if pending else line
            if joined.endswith("\\"):
                pending = joined[:-1].strip()
                continue
            pending = ""
            lines.append((joined, pending_at))
    return lines


def _cli_argv(line: str) -> List[str] | None:
    """``['fig5a', '--reps', '2']`` for a repro.cli line, else None."""
    if line.startswith("$ "):
        line = line[2:]
    try:
        tokens = shlex.split(line, comments=True)
    except ValueError:
        return None
    while tokens and re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*=.*", tokens[0]):
        tokens = tokens[1:]  # env-var prefixes like REPRO_TRACE=out.json
    if tokens[:3] != ["python", "-m", "repro.cli"]:
        return None
    return tokens[3:]


def _doc_files_with(extractor) -> List[Path]:
    return [p for p in DOC_FILES if extractor(p)]


@pytest.mark.parametrize(
    "path", _doc_files_with(_python_blocks), ids=lambda p: p.name)
def test_python_blocks_execute(path: Path, tmp_path):
    """Concatenate a file's python blocks and run them for real."""
    script = []
    for body, lineno in _python_blocks(path):
        script.append(f"# --- {path.name}:{lineno}\n{body}")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "doc-cache")
    env.pop("REPRO_TRACE", None)
    env.pop("REPRO_JOBS", None)
    proc = subprocess.run(
        [sys.executable, "-c", "\n\n".join(script)],
        capture_output=True, text=True, env=env, cwd=tmp_path, timeout=600,
    )
    assert proc.returncode == 0, (
        f"{path.name}: a documented python block failed\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )


@pytest.mark.parametrize(
    "path", _doc_files_with(_shell_lines), ids=lambda p: p.name)
def test_cli_lines_parse(path: Path, capsys):
    """Every documented ``python -m repro.cli`` invocation must parse."""
    from repro.cli import SUBCOMMAND_PARSERS, build_parser
    from repro.harness.experiments import ALL_EXPERIMENTS

    checked = 0
    for line, lineno in _shell_lines(path):
        argv = _cli_argv(line)
        if argv is None or not argv:
            continue
        checked += 1
        where = f"{path.name}:{lineno}: {line!r}"
        builder = SUBCOMMAND_PARSERS.get(argv[0])
        if builder is not None:
            parser, rest = builder(), argv[1:]
        else:
            parser, rest = build_parser(), argv
        try:
            args = parser.parse_args(rest)
        except SystemExit as exc:
            capsys.readouterr()
            pytest.fail(f"{where} does not parse (exit {exc.code})")
        if builder is None:
            for exp in args.experiments:
                assert exp in ALL_EXPERIMENTS or exp in ("list", "all"), (
                    f"{where} names unknown experiment {exp!r}")
    # Guard against the extractor silently matching nothing.
    assert checked > 0, f"{path.name}: no repro.cli lines found to check"


def test_every_doc_is_linked_from_readme():
    """The README documentation map must cover every docs/*.md page."""
    readme = (REPO / "README.md").read_text()
    for page in sorted((REPO / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README.md does not link docs/{page.name}")


def test_docs_cross_link_each_other():
    """Every docs page links every sibling page (the cross-link table)."""
    pages = sorted((REPO / "docs").glob("*.md"))
    for page in pages:
        text = page.read_text()
        missing = [other.name for other in pages
                   if other != page and other.name not in text]
        assert not missing, f"docs/{page.name} does not link {missing}"


def test_cli_help_points_at_canonical_docs():
    """``--help`` must direct users to the canonical references."""
    from repro.cli import build_parser

    help_text = build_parser().format_help()
    assert "docs/api.md" in help_text
    assert "docs/observability.md" in help_text
