"""Cartesian communicators (MPI_Cart_* analogues)."""

import numpy as np
import pytest

from repro.errors import InvalidCommunicatorError, RankFailedError
from repro.simmpi.api import PROC_NULL

from tests.conftest import mpi


def test_create_cart_dims_and_coords():
    def main(ctx):
        cart = ctx.comm.create_cart((2, 3))
        return (cart.dims, cart.coords)

    res = mpi(6, main)
    assert res.results[0] == ((2, 3), (0, 0))
    assert res.results[5] == ((2, 3), (1, 2))


def test_create_cart_size_mismatch():
    def main(ctx):
        ctx.comm.create_cart((2, 2))

    with pytest.raises(RankFailedError) as ei:
        mpi(6, main)
    assert isinstance(ei.value.original, InvalidCommunicatorError)


def test_cart_shift_pairs():
    def main(ctx):
        cart = ctx.comm.create_cart((4,))
        return cart.shift(axis=0, disp=1)

    res = mpi(4, main)
    assert res.results[0] == (PROC_NULL, 1)
    assert res.results[1] == (0, 2)
    assert res.results[3] == (2, PROC_NULL)


def test_cart_rank_at_roundtrip():
    def main(ctx):
        cart = ctx.comm.create_cart((2, 2, 2))
        return cart.rank_at(cart.coords_of(ctx.rank))

    res = mpi(8, main)
    assert res.results == list(range(8))


def test_cart_neighbors_count():
    def main(ctx):
        cart = ctx.comm.create_cart((3, 3))
        real = [r for (_, _, r) in cart.neighbors() if r != PROC_NULL]
        return len(real)

    res = mpi(9, main)
    assert res.results[4] == 4  # centre cell
    assert res.results[0] == 2  # corner


def test_cart_halo_exchange_with_shift():
    """The idiomatic Cart_shift + Sendrecv halo pattern works end to end."""

    def main(ctx):
        cart = ctx.comm.create_cart((ctx.size,))
        src, dst = cart.shift(axis=0, disp=1)
        buf = np.full(4, -1.0)
        cart.Sendrecv(np.full(4, float(cart.rank)), dst, buf, src)
        return buf[0]

    res = mpi(5, main)
    assert res.results == [-1.0, 0.0, 1.0, 2.0, 3.0]


def test_cart_collectives_inherited():
    def main(ctx):
        cart = ctx.comm.create_cart((2, 2))
        return cart.allreduce(cart.rank)

    res = mpi(4, main)
    assert res.results == [6, 6, 6, 6]


def test_cart_cids_agree():
    def main(ctx):
        return ctx.comm.create_cart((ctx.size,)).cid

    res = mpi(3, main)
    assert len(set(res.results)) == 1


def test_engine_max_virtual_time_guard():
    from repro.errors import EngineStateError

    def main(ctx):
        ctx.compute(100.0)
        ctx.comm.barrier()

    with pytest.raises(EngineStateError, match="max_virtual_time"):
        mpi(2, main, max_virtual_time=1.0)


def test_engine_max_virtual_time_allows_within_budget():
    def main(ctx):
        ctx.compute(0.5)

    res = mpi(2, main, max_virtual_time=10.0)
    assert res.walltime == pytest.approx(0.5)
