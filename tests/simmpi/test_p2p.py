"""Point-to-point semantics: matching, ordering, protocols, wildcards."""

import numpy as np
import pytest

from repro.errors import (
    InvalidRankError,
    InvalidTagError,
    RequestError,
    TruncationError,
)
from repro.simmpi.api import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.simmpi.request import Status, waitall

from tests.conftest import mpi


def test_object_send_recv_roundtrip():
    payload = {"a": [1, 2, 3], "b": ("x", 4.5)}

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(payload, dest=1, tag=9)
        else:
            return ctx.comm.recv(source=0, tag=9)

    res = mpi(2, main)
    assert res.results[1] == payload


def test_buffer_send_recv_roundtrip():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.arange(50, dtype=np.int64), dest=1)
        else:
            buf = np.zeros(50, dtype=np.int64)
            ctx.comm.Recv(buf, source=0)
            return buf.copy()

    res = mpi(2, main)
    assert np.array_equal(res.results[1], np.arange(50))


def test_send_snapshots_payload_against_later_mutation():
    def main(ctx):
        if ctx.rank == 0:
            arr = np.ones(10)
            req = ctx.comm.Isend(arr, dest=1)
            arr[:] = -1  # mutate after post; receiver must see ones
            req.wait()
        else:
            buf = np.zeros(10)
            ctx.comm.Recv(buf, source=0)
            return buf.copy()

    res = mpi(2, main)
    assert np.array_equal(res.results[1], np.ones(10))


def test_fifo_order_same_source_same_tag():
    def main(ctx):
        if ctx.rank == 0:
            for i in range(10):
                ctx.comm.send(i, dest=1, tag=4)
        else:
            return [ctx.comm.recv(source=0, tag=4) for _ in range(10)]

    res = mpi(2, main)
    assert res.results[1] == list(range(10))


def test_tag_selectivity_out_of_order_retrieval():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send("first", dest=1, tag=1)
            ctx.comm.send("second", dest=1, tag=2)
        else:
            b = ctx.comm.recv(source=0, tag=2)
            a = ctx.comm.recv(source=0, tag=1)
            return (a, b)

    res = mpi(2, main)
    assert res.results[1] == ("first", "second")


def test_any_source_receives_from_both():
    def main(ctx):
        if ctx.rank == 0:
            got = {ctx.comm.recv(source=ANY_SOURCE) for _ in range(2)}
            return got
        ctx.comm.send(ctx.rank, dest=0)

    res = mpi(3, main)
    assert res.results[0] == {1, 2}


def test_any_tag_matches_first_posted():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send("a", dest=1, tag=17)
        else:
            st = Status()
            val = ctx.comm.recv(source=0, tag=ANY_TAG, status=st)
            return (val, st.tag, st.source)

    res = mpi(2, main)
    assert res.results[1] == ("a", 17, 0)


def test_status_reports_count_for_buffers():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.arange(7, dtype=np.float64), dest=1)
        else:
            buf = np.zeros(10)
            st = Status()
            ctx.comm.Recv(buf, source=0, status=st)
            return st.count

    res = mpi(2, main)
    assert res.results[1] == 7


def test_truncation_error_kills_run():
    from repro.errors import RankFailedError

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.zeros(100), dest=1)
        else:
            ctx.comm.Recv(np.zeros(10), source=0)

    with pytest.raises(RankFailedError) as ei:
        mpi(2, main)
    assert isinstance(ei.value.original, TruncationError)


def test_proc_null_send_recv_complete_immediately():
    def main(ctx):
        ctx.comm.send("ignored", dest=PROC_NULL)
        st = Status()
        data = ctx.comm.recv(source=PROC_NULL, status=st)
        return (data, st.count, ctx.now)

    res = mpi(1, main)
    data, count, now = res.results[0]
    assert data is None and count == 0 and now == 0.0


def test_isend_irecv_waitall():
    def main(ctx):
        comm = ctx.comm
        peer = 1 - ctx.rank
        reqs = [comm.isend(f"m{i}", dest=peer, tag=i) for i in range(3)]
        rec = [comm.irecv(source=peer, tag=i) for i in range(3)]
        got = waitall(rec)
        waitall(reqs)
        return got

    res = mpi(2, main)
    assert res.results[0] == ["m0", "m1", "m2"]


def test_request_double_wait_rejected():
    from repro.errors import RankFailedError

    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.isend(1, dest=1)
            req.wait()
            req.wait()
        else:
            ctx.comm.recv(source=0)

    with pytest.raises(RankFailedError) as ei:
        mpi(2, main)
    assert isinstance(ei.value.original, RequestError)


def test_request_test_is_nonblocking():
    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1)
            early = req.test()
            ctx.comm.send("go", dest=1)
            val = req.wait()
            return (early, val)
        else:
            ctx.comm.recv(source=0)
            ctx.comm.send("late", dest=0)

    res = mpi(2, main)
    assert res.results[0] == (False, "late")


def test_invalid_dest_rank_raises():
    from repro.errors import RankFailedError

    def main(ctx):
        ctx.comm.send(1, dest=5)

    with pytest.raises(RankFailedError) as ei:
        mpi(2, main)
    assert isinstance(ei.value.original, InvalidRankError)


def test_any_tag_invalid_on_send():
    from repro.errors import RankFailedError

    def main(ctx):
        ctx.comm.send(1, dest=0, tag=ANY_TAG)

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, InvalidTagError)


def test_negative_tag_rejected():
    from repro.errors import RankFailedError

    def main(ctx):
        ctx.comm.send(1, dest=0, tag=-3)

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, InvalidTagError)


def test_sendrecv_ring_shifts_data():
    def main(ctx):
        comm = ctx.comm
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(comm.rank, dest=right, source=left)

    res = mpi(5, main)
    assert res.results == [4, 0, 1, 2, 3]


def test_buffer_sendrecv_exchanges_pairwise():
    def main(ctx):
        comm = ctx.comm
        peer = 1 - comm.rank
        send = np.full(4, comm.rank, dtype=np.float64)
        recv = np.zeros(4)
        comm.Sendrecv(send, peer, recv, peer)
        return recv[0]

    res = mpi(2, main)
    assert res.results == [1.0, 0.0]


def test_rendezvous_sender_waits_for_receiver():
    """A rendezvous-size blocking send completes only after the receiver
    posts, so the sender's clock includes the receiver's delay."""

    def main(ctx):
        big = np.zeros(500_000)  # 4 MB >> eager threshold
        if ctx.rank == 0:
            ctx.comm.Send(big, dest=1)
            return ctx.now
        ctx.compute(2.0)  # receiver arrives late
        buf = np.empty_like(big)
        ctx.comm.Recv(buf, source=0)
        return ctx.now

    res = mpi(2, main)
    assert res.results[0] >= 2.0  # sender was held by the late receiver


def test_eager_sender_does_not_wait_for_receiver():
    def main(ctx):
        small = np.zeros(16)  # well under the eager threshold
        if ctx.rank == 0:
            ctx.comm.Send(small, dest=1)
            return ctx.now
        ctx.compute(2.0)
        buf = np.empty_like(small)
        ctx.comm.Recv(buf, source=0)
        return ctx.now

    res = mpi(2, main)
    assert res.results[0] < 0.1  # sender long gone before the receive


def test_recv_completion_includes_wire_time():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 1000, dest=1)
        else:
            ctx.comm.recv(source=0)
            return ctx.now

    res = mpi(2, main)
    assert res.results[1] > 0.0


def test_dtype_mismatch_rejected():
    from repro.errors import DatatypeError, RankFailedError

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.zeros(4, dtype=np.float64), dest=1)
        else:
            ctx.comm.Recv(np.zeros(4, dtype=np.int32), source=0)

    with pytest.raises(RankFailedError) as ei:
        mpi(2, main)
    assert isinstance(ei.value.original, DatatypeError)
