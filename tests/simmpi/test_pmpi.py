"""PMPI tool registry: selective dispatch, multiple tools, traffic hooks."""

from repro.simmpi.pmpi import Tool, ToolRegistry
from repro.simmpi.sections_rt import section

from tests.conftest import mpi


class CountingTool(Tool):
    def __init__(self):
        self.enters = 0
        self.leaves = 0
        self.begins = 0
        self.ends = 0

    def on_rank_begin(self, rank, size, t):
        self.begins += 1

    def on_rank_end(self, rank, t):
        self.ends += 1

    def section_enter_cb(self, comm_id, label, data, rank, t):
        self.enters += 1

    def section_leave_cb(self, comm_id, label, data, rank, t):
        self.leaves += 1


def test_registry_dispatches_only_overridden_hooks():
    class OnlyEnter(Tool):
        def __init__(self):
            self.n = 0

        def section_enter_cb(self, comm_id, label, data, rank, t):
            self.n += 1

    t = OnlyEnter()
    reg = ToolRegistry([t])
    assert reg.wants("section_enter_cb")
    assert not reg.wants("section_leave_cb")
    assert not reg.wants("on_send")


def test_registry_dispatch_calls_every_tool():
    a, b = CountingTool(), CountingTool()
    reg = ToolRegistry([a, b])
    reg.dispatch("section_enter_cb", ("w",), "x", bytearray(32), 0, 0.0)
    assert a.enters == 1 and b.enters == 1


def test_tool_sees_all_section_events_of_run():
    tool = CountingTool()

    def main(ctx):
        with section(ctx, "phase"):
            pass

    mpi(3, main, tools=[tool])
    # MPI_MAIN + "phase" per rank.
    assert tool.enters == 6 and tool.leaves == 6


def test_lifecycle_hooks_called_per_rank():
    tool = CountingTool()
    mpi(4, lambda ctx: None, tools=[tool])
    assert tool.begins == 4 and tool.ends == 4


def test_on_send_hook_observes_p2p():
    class SendSpy(Tool):
        def __init__(self):
            self.sends = []

        def on_send(self, rank, dest, nbytes, tag, t):
            self.sends.append((rank, dest, tag))

    spy = SendSpy()

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send("m", dest=1, tag=5)
        else:
            ctx.comm.recv(source=0)

    mpi(2, main, tools=[spy])
    assert spy.sends == [(0, 1, 5)]


def test_on_collective_hook_observes_entry():
    class CollSpy(Tool):
        def __init__(self):
            self.names = []

        def on_collective(self, rank, name, comm_id, t):
            self.names.append((rank, name))

    spy = CollSpy()
    mpi(2, lambda ctx: ctx.comm.barrier(), tools=[spy])
    assert (0, "barrier") in spy.names and (1, "barrier") in spy.names


def test_untooled_run_pays_no_dispatch():
    reg = ToolRegistry([])
    assert not reg.wants("on_send")
    assert reg.tools == []
