"""Quantitative timing-model contract (pins docs/simulator.md).

These tests assert the *numbers* the timing model documentation
promises, on a noise-free single-tier machine where every term is
computable by hand.
"""

import numpy as np
import pytest

from repro.machine.spec import CoreSpec, MachineSpec, NetworkTier, NodeSpec
from repro.simmpi.engine import run_mpi

LAT = 10e-6          # tier latency
BW = 1e8             # tier bandwidth (bytes/s)
O = 2.5e-7           # o_send / o_recv engine defaults


def _machine(cores=8, eager=16 * 1024):
    node = NodeSpec(
        sockets=1, cores_per_socket=cores,
        core=CoreSpec(flops=1e9, hw_threads=1, ht_efficiency=0.0),
        mem_bandwidth=1e12,
    )
    tier = NetworkTier(latency=LAT, bandwidth=BW, jitter=0.0)
    return MachineSpec(name="flat", nodes=1, node=node,
                       intra_node=tier, inter_node=tier,
                       eager_threshold=eager)


def _run(main, p=2):
    return run_mpi(p, main, machine=_machine(max(p, 2)), seed=0)


def test_eager_delivery_time_formula():
    """recv completes at o_send + transfer + latency + o_recv for an
    eager message with the receiver already posted."""
    n = 1000  # bytes (eager)

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.zeros(n // 8), dest=1)
        else:
            buf = np.zeros(n // 8)
            ctx.comm.Recv(buf, source=0)
            return ctx.now

    expected = O + n / BW + LAT + O
    res = _run(main)
    assert res.results[1] == pytest.approx(expected, rel=1e-9)


def test_eager_sender_charge_is_overhead_plus_copy():
    n = 8000

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.zeros(n // 8), dest=1)
            return ctx.now
        ctx.comm.Recv(np.zeros(n // 8), source=0)

    res = _run(main)
    copy = n / _machine().intra_node.bandwidth
    assert res.results[0] == pytest.approx(O + copy, rel=1e-9)


def test_rendezvous_transfer_starts_at_late_receiver():
    n = 80_000  # > eager threshold

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.zeros(n // 8), dest=1)
            return ctx.now
        ctx.compute(1.0)
        buf = np.zeros(n // 8)
        ctx.comm.Recv(buf, source=0)
        return ctx.now

    res = _run(main)
    # Sender resumes when serialisation ends: recv_post + transfer.
    assert res.results[0] == pytest.approx(1.0 + n / BW, rel=1e-6)
    # Receiver completes after latency + o_recv on top.
    assert res.results[1] == pytest.approx(1.0 + n / BW + LAT + O, rel=1e-6)


def test_source_port_serialises_consecutive_sends():
    """Two eager messages to different receivers queue at the sender's
    port: the second arrives one transfer later."""
    n = 8000

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.zeros(n // 8), dest=1)
            ctx.comm.Send(np.zeros(n // 8), dest=2)
        elif ctx.rank in (1, 2):
            buf = np.zeros(n // 8)
            ctx.comm.Recv(buf, source=0)
            return ctx.now

    res = _run(main, p=3)
    t1, t2 = res.results[1], res.results[2]
    # Port busy until ~2 transfers for the second message; the sender's
    # own copy-time offset applies to both equally.
    assert t2 - t1 == pytest.approx(n / BW, rel=0.2)


def test_destination_port_serialises_fan_in():
    """Two senders to one receiver: deliveries drain sequentially."""
    n = 8000

    def main(ctx):
        if ctx.rank in (1, 2):
            ctx.comm.Send(np.zeros(n // 8), dest=0)
        else:
            t = []
            for src in (1, 2):
                buf = np.zeros(n // 8)
                ctx.comm.Recv(buf, source=src)
                t.append(ctx.now)
            return t

    res = _run(main, p=3)
    t1, t2 = res.results[0]
    assert t2 - t1 >= n / BW * 0.99


def test_compute_roofline_exact():
    def main(ctx):
        ctx.compute(flops=5e8)  # at 1 GF/s
        return ctx.now

    res = _run(main, p=2)
    assert res.results[0] == pytest.approx(0.5, rel=1e-12)


def test_proc_null_operations_cost_nothing():
    from repro.simmpi.api import PROC_NULL

    def main(ctx):
        for _ in range(100):
            ctx.comm.send("x", dest=PROC_NULL)
            ctx.comm.recv(source=PROC_NULL)
        return ctx.now

    res = _run(main, p=2)
    assert res.results[0] == 0.0


def test_latency_only_barrier_cost_log_rounds():
    """A dissemination barrier on p=8 takes ~3 rounds of (2·O + latency
    + tiny-payload transfer), all ranks entering simultaneously."""

    def main(ctx):
        ctx.comm.barrier()
        return ctx.now

    res = _run(main, p=8)
    per_round = LAT + 2 * O
    assert max(res.results) < 3 * per_round * 2.5
    assert max(res.results) > 3 * per_round * 0.5


def test_message_timing_independent_of_observer_tools():
    """Attaching every shipped tool changes nothing about virtual time."""
    from repro.tools import CommMatrixTool, SectionProfilerTool, TraceTool

    def main(ctx):
        from repro.simmpi.sections_rt import section

        with section(ctx, "w"):
            ctx.comm.sendrecv(np.zeros(64), dest=1 - ctx.rank,
                              source=1 - ctx.rank)
            ctx.compute(0.01)
        return ctx.now

    bare = run_mpi(2, main, machine=_machine(), seed=1)
    tooled = run_mpi(
        2, main, machine=_machine(), seed=1,
        tools=[SectionProfilerTool(), TraceTool(), CommMatrixTool()],
    )
    assert bare.clocks == tooled.clocks
