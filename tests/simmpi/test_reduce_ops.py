"""Reduction operator semantics on scalars, arrays, and (value, loc) pairs."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.simmpi.reduce_ops import (
    ALL_OPS,
    LAND,
    LOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
)


def test_sum_scalars_and_arrays():
    assert SUM(2, 3) == 5
    assert np.array_equal(SUM(np.array([1, 2]), np.array([3, 4])), np.array([4, 6]))


def test_prod():
    assert PROD(3, 4) == 12
    assert np.array_equal(PROD(np.array([2.0, 3.0]), np.array([5.0, 7.0])),
                          np.array([10.0, 21.0]))


def test_min_max_scalars():
    assert MIN(3, -1) == -1
    assert MAX(3, -1) == 3


def test_min_max_arrays_elementwise():
    a, b = np.array([1, 5]), np.array([4, 2])
    assert np.array_equal(MIN(a, b), np.array([1, 2]))
    assert np.array_equal(MAX(a, b), np.array([4, 5]))


def test_logical_ops():
    assert LAND(1, 0) is False
    assert LAND(2, 3) is True
    assert LOR(0, 0) is False
    assert LOR(0, 5) is True
    assert np.array_equal(
        LAND(np.array([True, True]), np.array([True, False])),
        np.array([True, False]),
    )


def test_minloc_picks_value_then_location():
    assert MINLOC((1.0, 5), (2.0, 1)) == (1.0, 5)
    assert MINLOC((2.0, 5), (2.0, 1)) == (2.0, 1)  # tie → lowest loc


def test_maxloc_picks_value_then_location():
    assert MAXLOC((1.0, 5), (2.0, 1)) == (2.0, 1)
    assert MAXLOC((2.0, 5), (2.0, 1)) == (2.0, 1)


def test_loc_ops_reject_non_pairs():
    with pytest.raises(MPIError):
        MINLOC(1.0, 2.0)


def test_ops_have_names_and_repr():
    for op in ALL_OPS:
        assert op.name in repr(op)
        assert op.commutative
