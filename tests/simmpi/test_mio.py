"""Modeled storage: costs, snapshot semantics, errors."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.simmpi.mio import ModeledStorage

from tests.conftest import mpi


def test_write_read_roundtrip_with_cost():
    store = ModeledStorage(bandwidth=1e9, latency=1e-3)

    def main(ctx):
        arr = np.arange(1000.0)
        t_write = store.write(ctx, "k", arr)
        out = store.read(ctx, "k")
        return (t_write, out, ctx.now)

    res = mpi(1, main)
    t_write, out, now = res.results[0]
    assert np.array_equal(out, np.arange(1000.0))
    assert t_write == pytest.approx(1e-3 + 8000 / 1e9)
    assert now == pytest.approx(2 * t_write)


def test_write_snapshots_source():
    store = ModeledStorage()

    def main(ctx):
        arr = np.ones(4)
        store.write(ctx, "a", arr)
        arr[:] = -1
        return store.read(ctx, "a")

    res = mpi(1, main)
    assert np.array_equal(res.results[0], np.ones(4))


def test_read_returns_fresh_copy():
    store = ModeledStorage()

    def main(ctx):
        store.write(ctx, "a", np.ones(4))
        first = store.read(ctx, "a")
        first[:] = 7
        return store.read(ctx, "a")

    res = mpi(1, main)
    assert np.array_equal(res.results[0], np.ones(4))


def test_missing_key_raises():
    store = ModeledStorage()

    def main(ctx):
        store.read(ctx, "ghost")

    from repro.errors import RankFailedError

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, MPIError)


def test_machine_defaults_used():
    store = ModeledStorage()  # falls back to machine io parameters

    def main(ctx):
        store.write(ctx, "x", b"abc")
        return ctx.now

    res = mpi(1, main)
    assert res.results[0] > 0


def test_traffic_counters_and_metadata():
    store = ModeledStorage()

    def main(ctx):
        store.write(ctx, "x", np.zeros(10))
        assert store.exists("x") and not store.exists("y")
        return store.size_of("x")

    res = mpi(1, main)
    assert res.results[0] == 80
    assert store.bytes_written == 80
