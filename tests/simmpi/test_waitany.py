"""waitany / waitsome / testall semantics."""

import pytest

from repro.errors import RankFailedError, RequestError
from repro.simmpi.request import waitany, waitsome
from repro.simmpi.request import testall as req_testall

from tests.conftest import mpi


def test_waitany_returns_earliest_completion():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=1, tag=t) for t in (0, 1)]
            idx, data = waitany(reqs)
            # consume the other to drain the run
            other = reqs[1 - idx].wait()
            return (idx, data, other)
        ctx.compute(1.0)
        ctx.comm.send("slow", dest=0, tag=0)   # arrives ~1.0s
        ctx.comm.send("slower", dest=0, tag=1)  # arrives after
    res = mpi(2, main)
    idx, data, other = res.results[0]
    assert (idx, data, other) == (0, "slow", "slower")


def test_waitany_blocks_until_first():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=1, tag=t) for t in (5, 6)]
            idx, _ = waitany(reqs)
            t_first = ctx.now
            waitany(reqs)
            return (idx, t_first)
        ctx.compute(2.0)
        ctx.comm.send("a", dest=0, tag=5)
        ctx.compute(1.0)
        ctx.comm.send("b", dest=0, tag=6)

    res = mpi(2, main)
    idx, t_first = res.results[0]
    assert idx == 0
    assert 2.0 <= t_first < 3.0  # woke on the first message, not the second


def test_waitany_consumes_chosen_only():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=1, tag=t) for t in (0, 1)]
            waitany(reqs)
            # waiting again must return the remaining one, not re-consume
            idx2, data2 = waitany(reqs)
            return (idx2, data2)
        ctx.comm.send("x", dest=0, tag=0)
        ctx.comm.send("y", dest=0, tag=1)

    res = mpi(2, main)
    assert res.results[0] == (1, "y")


def test_waitany_double_consume_raises():
    def main(ctx):
        if ctx.rank == 0:
            req = ctx.comm.irecv(source=1)
            waitany([req])
            waitany([req])  # nothing unconsumed left
        else:
            ctx.comm.send(1, dest=0)

    with pytest.raises(RankFailedError):
        mpi(2, main)


def test_waitany_empty_list_rejected():
    def main(ctx):
        waitany([])

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, RequestError)


def test_waitsome_returns_all_ready():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=1, tag=t) for t in range(3)]
            first = waitsome(reqs)
            rest = []
            while len(first) + len(rest) < 3:
                rest.extend(waitsome(reqs))
            return (len(first) >= 1, sorted(i for i, _ in first + rest))
        for t in range(3):
            ctx.comm.send(t * 10, dest=0, tag=t)

    res = mpi(2, main)
    got_at_least_one, indices = res.results[0]
    assert got_at_least_one
    assert indices == [0, 1, 2]


def test_testall():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.irecv(source=1, tag=t) for t in (0, 1)]
            early = req_testall(reqs)
            for r in reqs:
                r.wait()
            return (early, req_testall(reqs))
        ctx.comm.send("a", dest=0, tag=0)
        ctx.comm.send("b", dest=0, tag=1)

    res = mpi(2, main)
    early, late = res.results[0]
    assert early is False and late is True


def test_waitany_mixed_send_recv_requests():
    def main(ctx):
        if ctx.rank == 0:
            sreq = ctx.comm.isend(bytes(10**6), dest=1)  # rendezvous
            rreq = ctx.comm.irecv(source=1, tag=9)
            done = {}
            for _ in range(2):
                idx, data = waitany([sreq, rreq])
                done[idx] = data
            return sorted(done)
        ctx.comm.send("pong", dest=0, tag=9)
        ctx.comm.recv(source=0)

    res = mpi(2, main)
    assert res.results[0] == [0, 1]
