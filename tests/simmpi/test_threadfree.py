"""Differential suite: thread-free engine vs the thread-per-rank oracle.

The thread-free engine's contract is absolute: for the same program the
single-thread generator event loop and the legacy threaded baton engine
must produce **bit-identical** simulated results — per-rank clocks,
walltime, ``main`` return values, network byte/message counters,
section-event streams, collective gate counters, and even the number of
scheduling steps.  Every float assertion here is ``==`` on purpose.

Covered: a main exercising every collective (object and buffer modes),
point-to-point and waitany traffic, real workloads (convolution,
Lulesh, LBM), fault plans (stragglers, noise bursts, crashes, hangs),
odd/large rank counts up to a p=1024 smoke, engine selection (argument,
``REPRO_ENGINE``, graceful sync-main fallback), generator-frame stall
diagnostics, structural trace equivalence, and the cache/service
key-neutrality of the engine choice.
"""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.core.export import profile_to_json
from repro.core.profile import SectionProfile
from repro.errors import (
    EngineStateError,
    InjectedFaultError,
    RankFailedError,
    SimulationStalledError,
)
from repro.faults import (
    FaultPlan,
    NoiseBurst,
    RankCrash,
    RankHang,
    StragglerRank,
)
from repro.machine.catalog import laptop, nehalem_cluster
from repro.simmpi import (
    ENGINE_ENV,
    MAX,
    SUM,
    g_wait,
    g_waitany,
    section,
)
from repro.simmpi.engine import (
    Engine,
    ThreadFreeEngine,
    engine_mode,
    is_generator_main,
    run_mpi,
)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


def _g_everything_main(ctx):
    """One generator main exercising every communication shape.

    Written once as a generator and run on both engines: the threaded
    oracle drives it through the blocking adapter, the thread-free
    engine natively — so any divergence is the engine's fault, not the
    program's.
    """
    c = ctx.comm
    r, p = ctx.rank, c.size
    out = []
    ctx.compute(1e-6 * (1 + r % 5))  # skew arrivals
    with section(ctx, "COLL"):
        out.append((yield from c.g_allreduce(r + 1, SUM)))
        yield from c.g_barrier()
        out.append((yield from c.g_bcast(
            [r, "payload"] if r == 2 % p else None, root=2 % p)))
        out.append((yield from c.g_reduce(float(r), SUM, root=p - 1)))
        ctx.compute(1e-6 * ((r * 7) % 3))
        out.append((yield from c.g_scan(r, SUM)))
        out.append((yield from c.g_exscan(r, SUM)))
        out.append((yield from c.g_scatter(
            list(range(p)) if r == 0 else None, root=0)))
        out.append((yield from c.g_gather(r * r, root=1 % p)))
        out.append((yield from c.g_allgather((r, r * 2))))
        out.append((yield from c.g_alltoall([r * 100 + i for i in range(p)])))
    with section(ctx, "P2P"):
        right, left = (r + 1) % p, (r - 1) % p
        out.append((yield from c.g_sendrecv(
            ("ring", r), right, sendtag=5, source=left, recvtag=5)))
        sreq = c.isend(r * 1.5, right, 9)
        rreq = c.irecv(left, 9)
        idx = yield from g_waitany([rreq, sreq])
        other = sreq if idx == 0 else rreq
        yield from g_wait(other)
        out.append(rreq.data)
    with section(ctx, "VECTOR"):
        small = np.full(8, float(r + 1))
        big = np.full(4096, float(r + 1))  # > eager threshold: rendezvous
        acc = np.empty_like(small)
        yield from c.g_Allreduce(small, acc, SUM)
        out.append(float(acc[0]))
        accb = np.empty_like(big)
        yield from c.g_Allreduce(big, accb, MAX)
        out.append(float(accb[-1]))
        buf = np.arange(16.0) if r == 0 else np.empty(16)
        yield from c.g_Bcast(buf, root=0)
        out.append(float(buf.sum()))
        rec = np.empty(2)
        yield from c.g_Scatter(
            np.arange(2.0 * p) if r == 0 else None, rec, root=0)
        out.append(float(rec[0]))
        gat = np.empty(2 * p) if r == 0 else None
        yield from c.g_Gatherv(rec, gat, [2] * p, root=0)
        if r == 0:
            out.append(float(gat.sum()))
        ag = np.empty((p, 8))
        yield from c.g_Allgather(small, ag)
        out.append(float(ag.sum()))
        a2a = np.empty((p, 1))
        yield from c.g_Alltoall(np.full((p, 1), float(r)), a2a)
        out.append(float(a2a.sum()))
    ctx.compute(1e-6)
    return out


def _g_stepper_main(ctx):
    """Compute/allreduce loop: the fault-injection target."""
    for _ in range(10):
        ctx.compute(seconds=0.02)
        yield from ctx.comm.g_allreduce(ctx.rank, SUM)
    yield from ctx.comm.g_barrier()
    return ctx.now


# ---------------------------------------------------------------------------
# Comparison helpers
# ---------------------------------------------------------------------------


def _eq(a, b):
    """Recursive exact equality that tolerates numpy payloads."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            and a.dtype == b.dtype and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_eq(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_eq(a[k], b[k]) for k in a))
    return a == b


def _assert_bit_identical(tf, th):
    """The whole contract, field by field; ``==`` on floats throughout."""
    assert _eq(tf.results, th.results)
    assert tf.clocks == th.clocks          # exact float equality, per rank
    assert tf.walltime == th.walltime
    assert tf.network == th.network        # message AND byte counters
    assert tf.section_events == th.section_events
    assert tf.collectives_gated == th.collectives_gated
    assert tf.collectives_fast == th.collectives_fast
    assert tf.sched_steps == th.sched_steps
    assert tf.engine == "threadfree" and th.engine == "threads"
    assert tf.baton_handoffs == 0          # the point of the exercise


def _both(p, main, **kwargs):
    """Run ``main`` at ``p`` ranks on both engines; (threadfree, threads)."""
    kwargs.setdefault("machine", laptop(cores=max(2, p)))
    kwargs.setdefault("seed", 0)
    tf = run_mpi(p, main, engine="threadfree", **kwargs)
    th = run_mpi(p, main, engine="threads", **kwargs)
    return tf, th


# ---------------------------------------------------------------------------
# Full-surface bit identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("p", [2, 3, 8, 17, 64, 128])
def test_everything_main_bit_identical(p):
    tf, th = _both(
        p,
        _g_everything_main,
        machine=nehalem_cluster(nodes=-(-p // 8), jitter=0.1),
        seed=7,
        compute_jitter=0.05,
        noise_floor=1e-7,
    )
    _assert_bit_identical(tf, th)
    assert th.baton_handoffs > 0


@pytest.mark.parametrize("seed", [0, 1, 11])
def test_bit_identical_across_seeds(seed):
    tf, th = _both(8, _g_everything_main, seed=seed, compute_jitter=0.03)
    _assert_bit_identical(tf, th)


def test_message_path_collectives_bit_identical():
    """With the analytic fast path off, collectives run as real
    point-to-point algorithms — the scheduler-heaviest configuration."""
    tf, th = _both(8, _g_everything_main, coll_analytic=False,
                   machine=nehalem_cluster(nodes=1, jitter=0.1), seed=3)
    _assert_bit_identical(tf, th)
    assert tf.collectives_fast == 0


def test_p1024_smoke_completes_thread_free():
    def main(ctx):
        total = yield from ctx.comm.g_allreduce(1, SUM)
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        token = yield from ctx.comm.g_sendrecv(
            ctx.rank, right, sendtag=1, source=left, recvtag=1)
        return total, token

    res = run_mpi(1024, main, machine=laptop(cores=1024),
                  engine="threadfree")
    assert res.engine == "threadfree"
    assert res.baton_handoffs == 0
    assert res.results == [(1024, (r - 1) % 1024) for r in range(1024)]


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def test_convolution_workload_bit_identical():
    from repro.workloads.convolution import ConvolutionBenchmark, ConvolutionConfig

    bench = ConvolutionBenchmark(ConvolutionConfig(height=64, width=96, steps=5))
    kw = dict(machine=nehalem_cluster(nodes=1, jitter=0.1), seed=4,
              compute_jitter=0.02, noise_floor=1e-6)
    tf = bench.run(4, engine="threadfree", **kw)
    th = bench.run(4, engine="threads", **kw)
    _assert_bit_identical(tf, th)


def test_lulesh_workload_bit_identical():
    from repro.workloads.lulesh import LuleshBenchmark, LuleshConfig

    bench = LuleshBenchmark(LuleshConfig(s=6, steps=2))
    tf, phys_tf = bench.run(8, nthreads=2, seed=9, compute_jitter=0.01,
                            engine="threadfree")
    th, phys_th = bench.run(8, nthreads=2, seed=9, compute_jitter=0.01,
                            engine="threads")
    _assert_bit_identical(tf, th)
    assert phys_tf.energy_drift == phys_th.energy_drift


def test_lbm_workload_bit_identical():
    from repro.workloads.lbm import LBMBenchmark, LBMConfig

    bench = LBMBenchmark(LBMConfig(ny=16, nx=20, steps=8))
    tf, sum_tf = bench.run(4, machine=laptop(cores=4), seed=2,
                           compute_jitter=0.02, engine="threadfree")
    th, sum_th = bench.run(4, machine=laptop(cores=4), seed=2,
                           compute_jitter=0.02, engine="threads")
    _assert_bit_identical(tf, th)
    assert _eq(sum_tf, sum_th)


# ---------------------------------------------------------------------------
# Faults
# ---------------------------------------------------------------------------


def test_straggler_and_noise_bit_identical():
    plan = FaultPlan(
        (StragglerRank(rank=0, factor=1.7),
         NoiseBurst(rank=1, mean_delay=1e-4, prob=0.8)),
        seed=11,
    )
    tf, th = _both(4, _g_stepper_main, faults=plan, compute_jitter=0.05,
                   machine=nehalem_cluster(nodes=1, jitter=0.1), seed=5)
    _assert_bit_identical(tf, th)


def test_crash_identical_failure_on_both_engines():
    plan = FaultPlan((RankCrash(rank=1, at_time=0.05),))
    errs = []
    for engine in ("threadfree", "threads"):
        with pytest.raises(RankFailedError) as ei:
            run_mpi(2, _g_stepper_main, machine=laptop(cores=2),
                    faults=plan, engine=engine)
        errs.append(ei.value)
    tf_err, th_err = errs
    assert tf_err.rank == th_err.rank == 1
    assert isinstance(tf_err.original, InjectedFaultError)
    assert str(tf_err.original) == str(th_err.original)  # same virtual time


def test_hang_identical_stall_on_both_engines():
    plan = FaultPlan((RankHang(rank=1, at_time=0.05),))
    errs = []
    for engine in ("threadfree", "threads"):
        with pytest.raises(SimulationStalledError) as ei:
            run_mpi(2, _g_stepper_main, machine=laptop(cores=2),
                    faults=plan, engine=engine)
        errs.append(ei.value)
    tf_err, th_err = errs
    assert tf_err.reason == th_err.reason == "deadlock"
    assert tf_err.waiting_ranks() == th_err.waiting_ranks()
    for d_tf, d_th in zip(tf_err.diagnostics, th_err.diagnostics):
        assert d_tf.rank == d_th.rank
        assert d_tf.state == d_th.state
        assert d_tf.clock == d_th.clock
        assert d_tf.waiting_on == d_th.waiting_on
        assert d_tf.sections == d_th.sections
    # Partial profiles (with the hung rank's sections synthetically
    # closed) export byte-identically.
    assert (profile_to_json(tf_err.partial_profile)
            == profile_to_json(th_err.partial_profile))


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------


def test_engine_mode_parsing(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    assert engine_mode() == "threadfree"            # default
    assert engine_mode("threads") == "threads"
    assert engine_mode("threaded") == "threads"
    assert engine_mode("thread-free") == "threadfree"
    monkeypatch.setenv(ENGINE_ENV, "threads")
    assert engine_mode() == "threads"
    assert engine_mode("threadfree") == "threadfree"  # argument beats env
    monkeypatch.setenv(ENGINE_ENV, "coroutines")
    with pytest.raises(EngineStateError):
        engine_mode()
    with pytest.raises(EngineStateError):
        engine_mode("fibers")


def test_env_selects_engine(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV, "threads")
    th = run_mpi(2, _g_stepper_main, machine=laptop(cores=2))
    assert th.engine == "threads" and th.baton_handoffs > 0
    monkeypatch.setenv(ENGINE_ENV, "threadfree")
    tf = run_mpi(2, _g_stepper_main, machine=laptop(cores=2))
    assert tf.engine == "threadfree" and tf.baton_handoffs == 0
    _assert_bit_identical(tf, th)


def test_sync_main_falls_back_to_threads():
    """Plain blocking mains keep working under the default mode."""

    def main(ctx):
        return ctx.comm.allreduce(ctx.rank, SUM)

    assert not is_generator_main(main)
    res = run_mpi(2, main, machine=laptop(cores=2), engine="threadfree")
    assert res.engine == "threads"          # graceful degradation
    assert res.results == [1, 1]


def test_thread_free_engine_rejects_sync_main_directly():
    eng = ThreadFreeEngine(2, machine=laptop(cores=2))
    with pytest.raises(EngineStateError, match="generator"):
        eng.run(lambda ctx: None)


def test_blocking_call_inside_generator_main_is_an_error():
    """A generator main that sneaks in a blocking call cannot run on the
    event loop; the error names the g_* escape hatch."""

    def main(ctx):
        ctx.comm.barrier()      # blocking, not g_barrier
        yield from ctx.comm.g_barrier()

    with pytest.raises(RankFailedError) as ei:
        run_mpi(2, main, machine=laptop(cores=2), engine="threadfree")
    assert isinstance(ei.value.original, EngineStateError)
    assert "g_*" in str(ei.value.original)
    # The same program is fine on the threaded oracle.
    res = run_mpi(2, main, machine=laptop(cores=2), engine="threads")
    assert res.engine == "threads"


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------


def test_deadlock_diagnostics_carry_generator_frames():
    def main(ctx):
        with section(ctx, "STEP"):
            yield from ctx.comm.g_recv(source=1 - ctx.rank)

    with pytest.raises(SimulationStalledError) as ei:
        run_mpi(2, main, machine=laptop(cores=2), engine="threadfree")
    err = ei.value
    assert err.reason == "deadlock"
    assert sorted(err.waiting_ranks()) == [0, 1]
    for d in err.diagnostics:
        assert d.state == "BLOCKED"
        assert d.sections[-1] == "STEP"
        assert re.fullmatch(r"\S+\.py:\d+ in \w+", d.frame)
    assert any(d.frame for d in err.diagnostics)
    # The frame reaches the rendered report too.
    assert ".py:" in str(err)


def test_threaded_deadlock_diagnostics_have_no_frames():
    def main(ctx):
        ctx.comm.recv(source=1 - ctx.rank)

    with pytest.raises(SimulationStalledError) as ei:
        run_mpi(2, main, machine=laptop(cores=2), engine="threads")
    assert all(d.frame == "" for d in ei.value.diagnostics)


def test_watchdog_catches_runaway_generator_segment():
    def main(ctx):
        if ctx.rank == 0:
            import time

            deadline = time.perf_counter() + 0.8
            while time.perf_counter() < deadline:  # never reaches a yield
                pass
        yield from ctx.comm.g_barrier()

    with pytest.raises(SimulationStalledError) as ei:
        run_mpi(2, main, machine=laptop(cores=2), engine="threadfree",
                wall_timeout=0.2)
    assert ei.value.reason == "watchdog-timeout"
    assert "rank 0" in str(ei.value)


def test_deadlock_partial_profiles_identical_across_engines():
    def main(ctx):
        with section(ctx, "STEP"):
            ctx.compute(seconds=0.01 * (ctx.rank + 1))
            yield from ctx.comm.g_recv(source=1 - ctx.rank)

    profs = []
    for engine in ("threadfree", "threads"):
        with pytest.raises(SimulationStalledError) as ei:
            run_mpi(2, main, machine=laptop(cores=2), engine=engine)
        profs.append(profile_to_json(ei.value.partial_profile))
    assert profs[0] == profs[1]


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


def test_trace_spans_structurally_equivalent():
    """Span *structure* (names, layers, parentage shape) matches across
    engines; wall-clock timings and thread names legitimately differ."""
    from repro import obs

    def shape(spans):
        by_id = {s.span_id: s for s in spans}

        def path(s):
            names = []
            while s is not None:
                names.append(s.name)
                s = by_id.get(s.parent_id)
            return tuple(reversed(names))

        return sorted((path(s), s.layer, s.kind) for s in spans)

    shapes = []
    for engine in ("threadfree", "threads"):
        tracer = obs.start_trace("diff", layer="test")
        try:
            run_mpi(2, _g_stepper_main, machine=laptop(cores=2),
                    engine=engine)
        finally:
            obs.finish_trace()
        shapes.append(shape(tracer.spans()))
    assert shapes[0] == shapes[1]


# ---------------------------------------------------------------------------
# Cache neutrality
# ---------------------------------------------------------------------------


def test_sweep_point_cache_keys_ignore_engine():
    from dataclasses import replace

    from repro.harness.runner import _conv_point_key
    from repro.harness.sweeps import default_convolution_sweep

    a = default_convolution_sweep()
    b = replace(a, engine="threads")
    c = replace(a, engine="threadfree")
    keys = {_conv_point_key(s, 4, 0, 123) for s in (a, b, c)}
    assert len(keys) == 1
