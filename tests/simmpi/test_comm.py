"""Communicator semantics: groups, dup, split, isolation, validation."""

import pytest

from repro.errors import InvalidCommunicatorError, InvalidRankError, RankFailedError
from repro.simmpi.api import UNDEFINED
from repro.simmpi.comm import Group

from tests.conftest import mpi


def test_world_shape():
    def main(ctx):
        return (ctx.comm.rank, ctx.comm.size, ctx.comm.group)

    res = mpi(4, main)
    for r, (rank, size, group) in enumerate(res.results):
        assert rank == r and size == 4 and group == (0, 1, 2, 3)


def test_group_rejects_duplicates():
    with pytest.raises(InvalidRankError):
        Group([0, 1, 1])


def test_group_rank_of():
    g = Group([3, 1, 5])
    assert g.rank_of(1) == 1
    assert g.rank_of(5) == 2
    assert g.rank_of(0) == UNDEFINED


def test_dup_isolates_traffic():
    """A message sent on the dup cannot be received on the parent."""

    def main(ctx):
        comm = ctx.comm
        dup = comm.dup()
        if ctx.rank == 0:
            dup.send("on-dup", dest=1, tag=0)
            comm.send("on-world", dest=1, tag=0)
        else:
            world_msg = comm.recv(source=0, tag=0)
            dup_msg = dup.recv(source=0, tag=0)
            return (world_msg, dup_msg)

    res = mpi(2, main)
    assert res.results[1] == ("on-world", "on-dup")


def test_dup_ids_agree_across_ranks():
    def main(ctx):
        return ctx.comm.dup().cid

    res = mpi(3, main)
    assert res.results[0] == res.results[1] == res.results[2]


def test_split_even_odd():
    def main(ctx):
        comm = ctx.comm
        sub = comm.split(color=ctx.rank % 2, key=0)
        return (sub.rank, sub.size, sub.group)

    res = mpi(6, main)
    evens = res.results[0]
    assert evens[1] == 3 and evens[2] == (0, 2, 4)
    odds = res.results[1]
    assert odds[1] == 3 and odds[2] == (1, 3, 5)
    # rank within subgroup follows old-rank order
    assert res.results[4][0] == 2


def test_split_key_reorders():
    def main(ctx):
        sub = ctx.comm.split(color=0, key=-ctx.rank)  # reverse order
        return sub.rank

    res = mpi(4, main)
    assert res.results == [3, 2, 1, 0]


def test_split_undefined_returns_none():
    def main(ctx):
        color = 0 if ctx.rank < 2 else UNDEFINED
        sub = ctx.comm.split(color=color)
        return None if sub is None else sub.size

    res = mpi(4, main)
    assert res.results == [2, 2, None, None]


def test_split_subcommunicator_collectives_work():
    def main(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        return sub.allreduce(ctx.rank)

    res = mpi(6, main)
    assert res.results == [6, 9, 6, 9, 6, 9]  # 0+2+4 and 1+3+5


def test_nested_split_of_split():
    def main(ctx):
        half = ctx.comm.split(color=ctx.rank // 4)
        quarter = half.split(color=half.rank // 2)
        return (quarter.size, quarter.group)

    res = mpi(8, main)
    assert res.results[0] == (2, (0, 1))
    assert res.results[7] == (2, (6, 7))


def test_freed_communicator_unusable():
    def main(ctx):
        dup = ctx.comm.dup()
        dup.free()
        dup.send(1, dest=0)

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, InvalidCommunicatorError)


def test_comm_rank_translation_in_status():
    """Status.source is communicator-relative, not world-relative."""
    from repro.simmpi.request import Status

    def main(ctx):
        sub = ctx.comm.split(color=0, key=-ctx.rank)  # reversed ranks
        if sub.rank == 0:  # world rank 2
            sub.send("hello", dest=2, tag=1)
        elif sub.rank == 2:  # world rank 0
            st = Status()
            sub.recv(source=0, tag=1, status=st)
            return st.source

    res = mpi(3, main)
    assert res.results[0] == 0  # sub-rank of the sender, not world rank 2


def test_collectives_on_dup_do_not_cross():
    def main(ctx):
        a = ctx.comm.dup()
        b = ctx.comm.dup()
        x = a.allreduce(1)
        y = b.allreduce(2)
        return (x, y)

    res = mpi(4, main)
    assert all(r == (4, 8) for r in res.results)
