"""Engine scheduling, lifecycle, failure and determinism tests."""

import threading

import pytest

from repro.errors import (
    DeadlockError,
    EngineStateError,
    OversubscriptionError,
    RankFailedError,
)
from repro.machine.catalog import laptop, nehalem_cluster
from repro.simmpi.engine import Engine, run_mpi

from tests.conftest import mpi


def test_single_rank_returns_result():
    res = mpi(1, lambda ctx: ctx.rank * 10 + 7)
    assert res.results == [7]
    assert res.n_ranks == 1


def test_results_in_rank_order():
    res = mpi(5, lambda ctx: ctx.rank**2)
    assert res.results == [0, 1, 4, 9, 16]


def test_all_ranks_start_at_time_zero():
    res = mpi(4, lambda ctx: ctx.now)
    assert res.results == [0.0] * 4


def test_walltime_is_max_clock():
    def main(ctx):
        ctx.compute(0.001 * (ctx.rank + 1))

    res = mpi(3, main)
    assert res.walltime == pytest.approx(max(res.clocks))
    assert res.clocks[2] == pytest.approx(0.003)


def test_compute_advances_only_own_clock():
    def main(ctx):
        if ctx.rank == 0:
            ctx.compute(1.5)
        return ctx.now

    res = mpi(2, main)
    assert res.results[0] == pytest.approx(1.5)
    assert res.results[1] == 0.0


def test_rank_failure_propagates_with_rank():
    def main(ctx):
        if ctx.rank == 2:
            raise ValueError("boom on two")

    with pytest.raises(RankFailedError) as ei:
        mpi(4, main)
    assert ei.value.rank == 2
    assert isinstance(ei.value.original, ValueError)


def test_failure_unwinds_blocked_peers_without_hang():
    def main(ctx):
        if ctx.rank == 0:
            raise RuntimeError("early death")
        ctx.comm.recv(source=0)  # would block forever

    with pytest.raises(RankFailedError):
        mpi(3, main)
    # No stray rank threads survive the abort.
    assert not [
        t for t in threading.enumerate() if t.name.startswith("simmpi-rank")
    ]


def test_deadlock_detected_with_dump():
    def main(ctx):
        ctx.comm.recv(source=(ctx.rank + 1) % ctx.size)

    with pytest.raises(DeadlockError) as ei:
        mpi(3, main)
    msg = str(ei.value)
    assert "rank 0" in msg and "rank 2" in msg
    assert "unmatched recv" in msg


def test_pairwise_deadlock_two_blocking_rendezvous_sends():
    big = 10**6  # rendezvous-sized object payload

    def main(ctx):
        peer = 1 - ctx.rank
        ctx.comm.send(bytes(big), dest=peer)  # both block: classic deadlock
        ctx.comm.recv(source=peer)

    with pytest.raises(DeadlockError):
        mpi(2, main)


def test_engine_runs_once():
    eng = Engine(2, machine=laptop(4))
    eng.run(lambda ctx: None)
    with pytest.raises(EngineStateError):
        eng.run(lambda ctx: None)


def test_needs_at_least_one_rank():
    with pytest.raises(EngineStateError):
        Engine(0)


def test_oversubscription_rejected():
    with pytest.raises(OversubscriptionError):
        Engine(9, machine=laptop(cores=4), ranks_per_node=9)


def test_oversubscription_multinode_rejected():
    with pytest.raises(OversubscriptionError):
        Engine(33, machine=nehalem_cluster(nodes=4))  # 4*8=32 cores


def test_args_kwargs_forwarded():
    def main(ctx, a, b=0):
        return a + b + ctx.rank

    res = mpi(2, main, args=(10,), kwargs={"b": 5})
    assert res.results == [15, 16]


def test_negative_noise_parameters_rejected():
    with pytest.raises(EngineStateError):
        Engine(1, machine=laptop(2), compute_jitter=-0.1)
    with pytest.raises(EngineStateError):
        Engine(1, machine=laptop(2), noise_floor=-1e-6)


def test_determinism_same_seed_same_clocks():
    def main(ctx):
        comm = ctx.comm
        ctx.compute(flops=1e7)
        comm.allreduce(ctx.rank)
        comm.sendrecv(ctx.rank, dest=(ctx.rank + 1) % ctx.size,
                      source=(ctx.rank - 1) % ctx.size)
        return ctx.now

    mach = nehalem_cluster(nodes=2, jitter=0.2)
    r1 = run_mpi(8, main, machine=mach, seed=77, compute_jitter=0.05)
    r2 = run_mpi(8, main, machine=mach, seed=77, compute_jitter=0.05)
    assert r1.clocks == r2.clocks
    assert r1.walltime == r2.walltime


def test_different_seed_changes_jittered_timing():
    def main(ctx):
        ctx.compute(flops=1e8)
        ctx.comm.barrier()
        return ctx.now

    mach = nehalem_cluster(nodes=2, jitter=0.2)
    r1 = run_mpi(4, main, machine=mach, seed=1, compute_jitter=0.1)
    r2 = run_mpi(4, main, machine=mach, seed=2, compute_jitter=0.1)
    assert r1.walltime != r2.walltime


def test_noise_floor_adds_time():
    quiet = mpi(1, lambda ctx: ctx.compute(0.001))
    noisy = run_mpi(
        1, lambda ctx: ctx.compute(0.001), machine=laptop(2), noise_floor=0.01,
        seed=3,
    )
    assert noisy.walltime > quiet.walltime


def test_network_stats_counted():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"x" * 100, dest=1)
        elif ctx.rank == 1:
            ctx.comm.recv(source=0)

    res = mpi(2, main)
    assert res.network["messages"] == 1
    assert res.network["bytes"] >= 100


def test_unmatched_send_at_finalize_is_error():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.isend("orphan", dest=1)  # never received

    from repro.errors import MPIError

    with pytest.raises(MPIError, match="unmatched"):
        mpi(2, main)


def test_many_ranks_complete():
    res = mpi(128, lambda ctx: ctx.comm.allreduce(1), machine=nehalem_cluster(nodes=16))
    assert all(r == 128 for r in res.results)


# -- ready-heap scheduler fast path ----------------------------------------


def test_scheduler_ties_broken_by_rank_order():
    """Equal clocks (no compute yet) must schedule in rank order: the
    canonical message-matching order depends on it."""
    order = []

    def main(ctx):
        order.append(ctx.rank)
        ctx.comm.barrier()

    mpi(8, main)
    assert order[:8] == list(range(8))


def test_scheduler_picks_smallest_clock_after_wake():
    """A woken rank re-enters scheduling at its parked clock, competing
    against ranks that advanced meanwhile."""

    def main(ctx):
        if ctx.rank == 0:
            ctx.compute(seconds=1.0)
            ctx.comm.send("late", dest=1)
            return ctx.now
        got = ctx.comm.recv(source=0)  # parks at t≈0, wakes ≥ 1.0
        assert got == "late"
        return ctx.now

    res = mpi(2, main)
    assert res.results[1] >= 1.0


def test_scheduler_survives_repeated_block_wake_cycles():
    """Many park/wake cycles per rank leave stale heap entries behind;
    lazy invalidation must skip them all and still finish."""

    def main(ctx):
        peer = 1 - ctx.rank
        for i in range(50):
            if ctx.rank == 0:
                ctx.comm.send(i, dest=peer)
                assert ctx.comm.recv(source=peer) == i
            else:
                assert ctx.comm.recv(source=peer) == i
                ctx.comm.send(i, dest=peer)
        return ctx.now

    res = mpi(2, main)
    assert res.walltime > 0


def test_scheduler_counts_completions_with_unequal_lifetimes():
    """Ranks finishing at very different times must all be accounted for
    by the DONE counter (no premature return, no hang)."""

    def main(ctx):
        ctx.compute(seconds=float(ctx.rank))
        return ctx.rank

    res = mpi(6, main)
    assert res.results == list(range(6))
    assert res.walltime == pytest.approx(5.0)
