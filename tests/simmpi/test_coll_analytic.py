"""Differential bit-identity suite for the analytic collective fast path.

The contract of :mod:`repro.simmpi.coll_analytic` is absolute: with the
fast path on or off, a run's per-rank clocks, walltime, ``main`` return
values, network byte/message counters and section-event stream must be
**bit-identical** — not approximately equal.  Every assertion here is
``==`` on floats on purpose.

Covered: all collectives (object and vector/buffer variants), object
payloads above and below the rendezvous threshold, network jitter,
compute jitter and noise-floor draws, several seeds, odd/non-power-of-2
and large rank counts, explicit ``coll_analytic=`` engine arguments and
the ``REPRO_COLL_ANALYTIC`` environment switch, and the fault-plan
fallback that forces the message path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultPlan, StragglerRank
from repro.machine.catalog import laptop, nehalem_cluster
from repro.simmpi import SUM, MAX, section
from repro.simmpi.coll_analytic import ANALYTIC_ENV, analytic_enabled
from repro.simmpi.engine import Engine, run_mpi


def _all_collectives_main(ctx):
    """Exercise every collective, mixing compute between them so entry
    clocks are rank-skewed and jitter streams are mid-consumption."""
    c = ctx.comm
    r, p = ctx.rank, c.size
    out = []
    ctx.compute(1e-6 * (1 + r % 5))  # skew arrivals
    with section(ctx, "COLL"):
        out.append(c.allreduce(r + 1, SUM))
        c.barrier()
        out.append(c.bcast([r, "payload"] if r == 2 % p else None, root=2 % p))
        out.append(c.reduce(float(r), SUM, root=p - 1))
        ctx.compute(1e-6 * ((r * 7) % 3))
        out.append(c.scan(r, SUM))
        out.append(c.exscan(r, SUM))
        out.append(c.scatter(list(range(p)) if r == 0 else None, root=0))
        out.append(c.gather(r * r, root=1 % p))
        out.append(c.allgather((r, r * 2)))
        out.append(c.alltoall([r * 100 + i for i in range(p)]))
    with section(ctx, "VECTOR"):
        small = np.full(8, float(r + 1))
        big = np.full(4096, float(r + 1))  # > eager threshold: rendezvous
        acc = np.empty_like(small)
        c.Allreduce(small, acc, SUM)
        out.append(float(acc[0]))
        accb = np.empty_like(big)
        c.Allreduce(big, accb, MAX)
        out.append(float(accb[-1]))
        buf = np.arange(16.0) if r == 0 else np.empty(16)
        c.Bcast(buf, root=0)
        out.append(float(buf.sum()))
        rec = np.empty(2)
        c.Scatter(np.arange(2.0 * p) if r == 0 else None, rec, root=0)
        out.append(float(rec[0]))
        gat = np.empty(2 * p) if r == 0 else None
        c.Gatherv(rec, gat, [2] * p, root=0)
        if r == 0:
            out.append(float(gat.sum()))
        ag = np.empty((p, 8))
        c.Allgather(small, ag)
        out.append(float(ag.sum()))
        a2a = np.empty((p, 1))
        c.Alltoall(np.full((p, 1), float(r)), a2a)
        out.append(float(a2a.sum()))
        rsb = np.empty(1)
        c.Reduce_scatter_block(np.arange(float(p)).reshape(p, 1), rsb, SUM)
        out.append(float(rsb[0]))
    ctx.compute(1e-6)
    return out


def _run(p, fast, seed, machine=None):
    return run_mpi(
        p,
        _all_collectives_main,
        machine=machine or nehalem_cluster(nodes=-(-p // 8), jitter=0.1),
        seed=seed,
        compute_jitter=0.05,
        noise_floor=1e-7,
        coll_analytic=fast,
    )


def _assert_bit_identical(on, off):
    assert on.results == off.results
    assert on.clocks == off.clocks  # exact float equality, per rank
    assert on.walltime == off.walltime
    assert on.network == off.network  # message AND byte counters
    assert on.section_events == off.section_events


@pytest.mark.parametrize("p", [2, 3, 8, 17, 64])
def test_fast_path_bit_identical_all_collectives(p):
    on = _run(p, fast=True, seed=7)
    off = _run(p, fast=False, seed=7)
    _assert_bit_identical(on, off)
    assert on.collectives_gated == off.collectives_gated > 0
    assert on.collectives_fast == on.collectives_gated
    assert off.collectives_fast == 0
    # The point of the exercise: the fast path resolves each collective
    # with ~2p handoffs instead of ~2p·log2(p)+ thread switches.
    assert on.baton_handoffs < off.baton_handoffs


@pytest.mark.parametrize("seed", [0, 1, 11])
def test_fast_path_bit_identical_across_seeds(seed):
    _assert_bit_identical(
        _run(8, fast=True, seed=seed), _run(8, fast=False, seed=seed)
    )


def test_fast_path_bit_identical_on_quiet_machine():
    """No jitter anywhere: the degenerate all-deterministic case."""
    mach = laptop(cores=4)
    on = run_mpi(4, _all_collectives_main, machine=mach, seed=0,
                 coll_analytic=True)
    off = run_mpi(4, _all_collectives_main, machine=mach, seed=0,
                  coll_analytic=False)
    _assert_bit_identical(on, off)


def test_fault_plan_forces_message_path():
    """An active FaultPlan must disable the analytic replay (delivery
    points have to fire on the owning rank's thread) while the gate
    still engages, keeping clocks comparable to fault-free runs."""
    plan = FaultPlan((StragglerRank(rank=0, factor=1.0),), seed=3)
    res = run_mpi(4, _all_collectives_main,
                  machine=nehalem_cluster(nodes=1, jitter=0.1), seed=7,
                  compute_jitter=0.05, noise_floor=1e-7, faults=plan,
                  coll_analytic=True)
    assert res.collectives_gated > 0
    assert res.collectives_fast == 0
    # ... and a unit-factor straggler still matches the fault-free run.
    base = _run(4, fast=True, seed=7,
                machine=nehalem_cluster(nodes=1, jitter=0.1))
    assert res.clocks == base.clocks


def test_subcommunicator_collectives_not_gated():
    """Collectives on a communicator smaller than the world stay on the
    plain threaded path (outside ranks could interleave traffic)."""

    def main(ctx):
        c = ctx.comm
        sub = c.split(color=ctx.rank % 2, key=ctx.rank)
        val = sub.allreduce(ctx.rank, SUM)
        c.barrier()
        return val

    res = run_mpi(4, main, coll_analytic=True)
    # split()'s own allgather + the final barrier are world-spanning and
    # gated; the sub-communicator allreduce must not be.
    assert res.collectives_fast == res.collectives_gated
    # Even ranks sum to 0+2, odd ranks to 1+3 — within the halves only.
    assert res.results == [2, 4, 2, 4]


def test_env_switch_parsing(monkeypatch):
    """``REPRO_COLL_ANALYTIC`` is on unless explicitly falsy."""
    assert analytic_enabled(None) in (True, False)  # env-dependent
    for off_value in ("0", "false", "FALSE", " no ", "off"):
        assert analytic_enabled(off_value) is False
    for on_value in ("1", "true", "yes", "on", "", "anything"):
        assert analytic_enabled(on_value) is True
    monkeypatch.delenv(ANALYTIC_ENV, raising=False)
    assert Engine(2).coll_analytic is True
    monkeypatch.setenv(ANALYTIC_ENV, "0")
    assert Engine(2).coll_analytic is False
    # An explicit engine argument beats the environment.
    assert Engine(2, coll_analytic=True).coll_analytic is True
    monkeypatch.setenv(ANALYTIC_ENV, "1")
    assert Engine(2, coll_analytic=False).coll_analytic is False


def test_env_switch_bit_identity(monkeypatch):
    """The environment path (no engine argument) is bit-identical too."""
    monkeypatch.setenv(ANALYTIC_ENV, "1")
    on = run_mpi(5, _all_collectives_main,
                 machine=nehalem_cluster(nodes=1, jitter=0.1), seed=2,
                 compute_jitter=0.02)
    assert on.collectives_fast > 0
    monkeypatch.setenv(ANALYTIC_ENV, "0")
    off = run_mpi(5, _all_collectives_main,
                  machine=nehalem_cluster(nodes=1, jitter=0.1), seed=2,
                  compute_jitter=0.02)
    assert off.collectives_fast == 0
    _assert_bit_identical(on, off)


def test_fast_path_repeatable():
    """Same seed, same mode, twice: byte-for-byte repeatable (the gate
    introduces no hidden scheduling nondeterminism)."""
    a = _run(8, fast=True, seed=13)
    b = _run(8, fast=True, seed=13)
    _assert_bit_identical(a, b)
    assert a.sched_steps == b.sched_steps
    assert a.baton_handoffs == b.baton_handoffs


def test_counters_surface_in_run_result():
    res = _run(2, fast=True, seed=0)
    assert res.sched_steps >= res.baton_handoffs > 0
    assert res.collectives_gated >= res.collectives_fast > 0


def test_per_collective_gate(monkeypatch):
    """``-<kind>`` entries gate single collectives off the fast path.

    ``REPRO_COLL_ANALYTIC=-reduce`` keeps the path enabled overall but
    routes reduce through the message path — the escape hatch for a
    pattern where the analytic program would lose — bit-identically,
    since both paths are bit-identical to begin with.
    """
    from repro.simmpi.coll_analytic import analytic_off_kinds

    assert analytic_off_kinds("-reduce") == frozenset({"reduce"})
    assert analytic_off_kinds("-Reduce, -gather") == frozenset(
        {"reduce", "gather"}
    )
    assert analytic_off_kinds("1") == frozenset()
    assert analytic_off_kinds("0") == frozenset()

    monkeypatch.setenv(ANALYTIC_ENV, "-reduce")
    eng = Engine(2)
    assert eng.coll_analytic is True
    assert eng.analytic_for("Reduce") is False  # buffer spelling
    assert eng.analytic_for("reduce") is False  # object spelling
    assert eng.analytic_for("Allreduce") is True

    def main(ctx):
        ctx.compute(1e-6 * (1 + ctx.rank % 3))
        a = ctx.comm.reduce(float(ctx.rank), SUM)
        b = ctx.comm.allreduce(ctx.rank, SUM)
        return (a, b)

    machine = nehalem_cluster(nodes=1, jitter=0.1)
    gated = run_mpi(5, main, machine=machine, seed=2)
    monkeypatch.setenv(ANALYTIC_ENV, "1")
    fast = run_mpi(5, main, machine=machine, seed=2)
    monkeypatch.setenv(ANALYTIC_ENV, "0")
    message = run_mpi(5, main, machine=machine, seed=2)

    _assert_bit_identical(fast, message)
    _assert_bit_identical(gated, message)
    # Only the allreduce took the fast path under the gate.
    assert fast.collectives_fast == 2
    assert gated.collectives_fast == 1
    assert message.collectives_fast == 0
