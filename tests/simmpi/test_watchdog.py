"""Watchdog, progress monitor, and structured stall diagnostics."""

import time

import pytest

from repro.errors import DeadlockError, EngineStateError, SimulationStalledError
from repro.machine.catalog import laptop
from repro.machine.spec import CoreSpec, MachineSpec, NetworkTier, NodeSpec
from repro.simmpi.engine import Engine, run_mpi
from repro.simmpi.sections_rt import section

from tests.conftest import mpi


def _zero_latency_machine(cores: int = 2) -> MachineSpec:
    """A machine on which a 0-byte message costs no virtual time: the
    fixture that turns an endless ping-pong into a pure livelock."""
    node = NodeSpec(
        sockets=1,
        cores_per_socket=cores,
        core=CoreSpec(flops=8.0e9, hw_threads=1, ht_efficiency=1.0),
        mem_bandwidth=20.0e9,
        mem_per_node=16.0e9,
    )
    free = NetworkTier(latency=0.0, bandwidth=1.0e9, jitter=0.0)
    return MachineSpec(
        name="zero-lat", nodes=1, node=node, intra_node=free, inter_node=free,
    )


# -- deadlock fixtures: structured diagnostics -------------------------------


def _recv_recv(ctx):
    with section(ctx, "STEP"):
        ctx.comm.recv(source=1 - ctx.rank)  # both wait forever


def _send_send(ctx):
    big = bytes(10**6)  # rendezvous-sized: send blocks until matched
    with section(ctx, "STEP"):
        ctx.comm.send(big, dest=1 - ctx.rank)
        ctx.comm.recv(source=1 - ctx.rank)


@pytest.mark.parametrize("main", [_recv_recv, _send_send],
                         ids=["recv-recv", "send-send"])
def test_two_rank_deadlock_names_both_ranks(main):
    with pytest.raises(SimulationStalledError) as ei:
        mpi(2, main)
    err = ei.value
    assert err.reason == "deadlock"
    msg = str(err)
    assert "rank 0" in msg and "rank 1" in msg
    # Structured per-rank dumps: both ranks blocked, each with wait info.
    assert sorted(err.waiting_ranks()) == [0, 1]
    assert len(err.diagnostics) == 2
    for d in err.diagnostics:
        assert d.state == "BLOCKED"
        assert d.waiting_on  # human-readable description of the request
        assert d.sections[-1] == "STEP"  # innermost open section


@pytest.mark.parametrize("main", [_recv_recv, _send_send],
                         ids=["recv-recv", "send-send"])
def test_deadlock_carries_partial_profile(main):
    with pytest.raises(SimulationStalledError) as ei:
        mpi(2, main)
    partial = ei.value.partial_profile
    assert partial is not None
    assert partial.meta.get("partial") is True
    # The open STEP section was synthetically closed on both ranks.
    assert "STEP" in partial.labels()
    assert sorted(partial.rank_times("STEP")) == [0, 1]


def test_stalled_error_still_catches_as_deadlock_error():
    with pytest.raises(DeadlockError):
        mpi(2, _recv_recv)


# -- wall-clock watchdog -----------------------------------------------------


def test_watchdog_aborts_runaway_rank():
    def main(ctx):
        if ctx.rank == 0:
            while True:  # never yields the baton back to the scheduler
                time.sleep(0.05)
        ctx.comm.barrier()

    t0 = time.monotonic()
    with pytest.raises(SimulationStalledError) as ei:
        mpi(2, main, wall_timeout=0.5)
    elapsed = time.monotonic() - t0
    assert ei.value.reason == "watchdog-timeout"
    assert "rank 0" in str(ei.value)
    assert elapsed < 10.0  # terminated by the watchdog, not by luck


def test_watchdog_does_not_fire_on_healthy_runs():
    def main(ctx):
        ctx.compute(seconds=1e6)  # huge *virtual* time, trivial real time
        return ctx.now

    res = mpi(2, main, wall_timeout=30.0)
    assert res.results == [pytest.approx(1e6)] * 2


# -- virtual-clock progress monitor ------------------------------------------


def test_progress_monitor_trips_on_zero_cost_livelock():
    def main(ctx):
        peer = 1 - ctx.rank
        while True:  # 0-byte ping-pong that never advances virtual time
            if ctx.rank == 0:
                ctx.comm.send(b"", dest=peer)
                ctx.comm.recv(source=peer)
            else:
                ctx.comm.recv(source=peer)
                ctx.comm.send(b"", dest=peer)

    eng = Engine(2, machine=_zero_latency_machine(), progress_steps=500)
    eng.network.o_send = eng.network.o_recv = 0.0
    with pytest.raises(SimulationStalledError) as ei:
        eng.run(main)
    assert ei.value.reason == "no-progress"
    assert "virtual clock stuck" in str(ei.value)


def test_progress_monitor_tolerates_advancing_clocks():
    def main(ctx):
        for i in range(300):
            ctx.compute(seconds=1e-6)
        return ctx.now

    res = run_mpi(2, main, machine=laptop(2), progress_steps=50)
    assert res.results[0] > 0


# -- parameter validation ----------------------------------------------------


def test_watchdog_parameters_validated():
    with pytest.raises(EngineStateError):
        Engine(1, machine=laptop(2), wall_timeout=0.0)
    with pytest.raises(EngineStateError):
        Engine(1, machine=laptop(2), progress_steps=0)
