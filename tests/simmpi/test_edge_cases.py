"""Substrate edge cases: self-messages, empty payloads, boundary values."""

import numpy as np
import pytest

from repro.errors import InvalidTagError, RankFailedError
from repro.simmpi.api import ANY_SOURCE, TAG_UB, UNDEFINED

from tests.conftest import mpi


def test_self_send_recv_eager():
    def main(ctx):
        req = ctx.comm.isend({"self": ctx.rank}, dest=ctx.rank, tag=1)
        data = ctx.comm.recv(source=ctx.rank, tag=1)
        req.wait()
        return data

    res = mpi(2, main)
    assert res.results == [{"self": 0}, {"self": 1}]


def test_self_send_rendezvous_posted_recv_first():
    def main(ctx):
        big = np.arange(100_000.0)
        rreq = ctx.comm.irecv(source=ctx.rank, tag=2)
        ctx.comm.isend(big, dest=ctx.rank, tag=2).wait()
        out = rreq.wait()
        return float(out.sum())

    res = mpi(1, main)
    assert res.results[0] == pytest.approx(np.arange(100_000.0).sum())


def test_self_blocking_rendezvous_send_without_recv_deadlocks():
    from repro.errors import DeadlockError

    def main(ctx):
        ctx.comm.send(bytes(10**6), dest=ctx.rank)  # no recv posted: stuck

    with pytest.raises(DeadlockError):
        mpi(1, main)


def test_zero_size_array_roundtrip():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.empty(0), dest=1)
        else:
            buf = np.empty(0)
            ctx.comm.Recv(buf, source=0)
            return buf.size

    res = mpi(2, main)
    assert res.results[1] == 0


def test_empty_bytes_and_none_payloads():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send(b"", dest=1, tag=1)
            ctx.comm.send(None, dest=1, tag=2)
        else:
            empty = ctx.comm.recv(source=0, tag=1)
            nothing = ctx.comm.recv(source=0, tag=2)
            return (empty, nothing)

    res = mpi(2, main)
    assert res.results[1] == (b"", None)


def test_tag_upper_boundary():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send("edge", dest=1, tag=TAG_UB - 1)
        else:
            return ctx.comm.recv(source=0, tag=TAG_UB - 1)

    res = mpi(2, main)
    assert res.results[1] == "edge"


def test_tag_at_ub_rejected():
    def main(ctx):
        ctx.comm.send("x", dest=0, tag=TAG_UB)

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, InvalidTagError)


def test_split_all_undefined_returns_none_everywhere():
    def main(ctx):
        return ctx.comm.split(color=UNDEFINED)

    res = mpi(3, main)
    assert res.results == [None, None, None]


def test_split_singletons():
    def main(ctx):
        sub = ctx.comm.split(color=ctx.rank)  # every rank alone
        return (sub.size, sub.allreduce(ctx.rank + 1))

    res = mpi(4, main)
    assert res.results == [(1, 1), (1, 2), (1, 3), (1, 4)]


def test_collectives_on_single_rank_world():
    def main(ctx):
        comm = ctx.comm
        assert comm.bcast("x") == "x"
        assert comm.allreduce(5) == 5
        assert comm.gather(1) == [1]
        assert comm.scatter([9]) == 9
        assert comm.allgather(2) == [2]
        assert comm.alltoall([3]) == [3]
        assert comm.scan(4) == 4
        assert comm.exscan(4) is None
        comm.barrier()
        return True

    assert mpi(1, main).results == [True]


def test_scalar_zero_dim_array_buffers():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.array(7.5), dest=1)
        else:
            buf = np.array(0.0)
            ctx.comm.Recv(buf, source=0)
            return float(buf)

    res = mpi(2, main)
    assert res.results[1] == 7.5


def test_many_outstanding_requests_single_pair():
    def main(ctx):
        n = 200
        if ctx.rank == 0:
            reqs = [ctx.comm.isend(i, dest=1, tag=i % 8) for i in range(n)]
            from repro.simmpi.request import waitall
            waitall(reqs)
        else:
            out = []
            for tag in range(8):
                cnt = len([i for i in range(n) if i % 8 == tag])
                out.extend(ctx.comm.recv(source=0, tag=tag) for _ in range(cnt))
            return sorted(out)

    res = mpi(2, main)
    assert res.results[1] == list(range(200))


def test_exception_in_tool_callback_fails_rank_cleanly():
    from repro.simmpi.pmpi import Tool
    from repro.simmpi.sections_rt import section

    class BadTool(Tool):
        def section_enter_cb(self, comm_id, label, data, rank, t):
            if label == "boom":
                raise RuntimeError("tool exploded")

    def main(ctx):
        with section(ctx, "boom"):
            pass

    with pytest.raises(RankFailedError) as ei:
        mpi(2, main, tools=[BadTool()])
    assert isinstance(ei.value.original, RuntimeError)


def test_failure_inside_collective_aborts_all():
    def main(ctx):
        if ctx.rank == 1:
            raise ValueError("mid-collective death")
        ctx.comm.allreduce(1)  # others enter and would wait forever

    with pytest.raises(RankFailedError) as ei:
        mpi(4, main)
    assert ei.value.rank == 1


def test_interleaved_communicators_no_crosstalk():
    def main(ctx):
        comm = ctx.comm
        dup = comm.dup()
        peer = 1 - ctx.rank
        if ctx.rank == 0:
            comm.send("world", dest=peer, tag=0)
            dup.send("dup", dest=peer, tag=0)
        else:
            # receive in the opposite order of sends: isolation by comm
            d = dup.recv(source=peer, tag=0)
            w = comm.recv(source=peer, tag=0)
            return (w, d)

    res = mpi(2, main)
    assert res.results[1] == ("world", "dup")
