"""Payload snapshotting, size estimation, delivery semantics."""

import numpy as np
import pytest

from repro.errors import DatatypeError, TruncationError
from repro.simmpi.datatypes import (
    clone_payload,
    deliver_into,
    is_buffer_payload,
    payload_nbytes,
)


def test_nbytes_of_array():
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
    assert payload_nbytes(np.zeros((3, 4), dtype=np.int32)) == 48


def test_nbytes_of_bytes_and_none():
    assert payload_nbytes(b"12345") == 5
    assert payload_nbytes(None) == 0


def test_nbytes_of_object_is_positive_estimate():
    assert payload_nbytes({"k": list(range(100))}) > 64


def test_clone_array_is_independent_copy():
    a = np.arange(5.0)
    c = clone_payload(a)
    a[0] = 99
    assert c[0] == 0.0


def test_clone_noncontiguous_array_made_contiguous():
    a = np.arange(20.0).reshape(4, 5)[:, ::2]
    c = clone_payload(a)
    assert c.flags["C_CONTIGUOUS"]
    assert np.array_equal(c, a)


def test_clone_scalars_pass_through():
    for v in (3, 2.5, "s", b"b", True, frozenset({1}), (1, 2.5, "x")):
        assert clone_payload(v) == v


def test_clone_mutable_object_snapshots():
    d = {"x": [1, 2]}
    c = clone_payload(d)
    d["x"].append(3)
    assert c == {"x": [1, 2]}


def test_clone_unpicklable_raises():
    with pytest.raises(DatatypeError):
        clone_payload(lambda x: x)


def test_is_buffer_payload():
    assert is_buffer_payload(np.zeros(1))
    assert not is_buffer_payload([1, 2])


def test_deliver_exact_fit():
    buf = np.zeros(4)
    n = deliver_into(buf, np.arange(4.0))
    assert n == 4 and np.array_equal(buf, np.arange(4.0))


def test_deliver_prefix_smaller_message():
    buf = np.full(6, -1.0)
    n = deliver_into(buf, np.arange(3.0))
    assert n == 3
    assert np.array_equal(buf, np.array([0.0, 1.0, 2.0, -1.0, -1.0, -1.0]))


def test_deliver_truncation_raises():
    with pytest.raises(TruncationError):
        deliver_into(np.zeros(2), np.arange(5.0))


def test_deliver_dtype_mismatch_raises():
    with pytest.raises(DatatypeError):
        deliver_into(np.zeros(4, dtype=np.float32), np.zeros(4, dtype=np.float64))


def test_deliver_object_into_buffer_raises():
    with pytest.raises(DatatypeError):
        deliver_into(np.zeros(4), "not-an-array")


def test_deliver_reshapes_across_dims():
    buf = np.zeros((2, 3))
    deliver_into(buf, np.arange(6.0).reshape(3, 2))
    assert np.array_equal(buf.reshape(-1), np.arange(6.0))
