"""Probe/iprobe semantics and the extended collectives."""

import numpy as np
import pytest

from repro.errors import CommMismatchError, RankFailedError
from repro.simmpi.api import ANY_SOURCE, ANY_TAG
from repro.simmpi.reduce_ops import MAX, SUM

from tests.conftest import mpi


# -- probe / iprobe ------------------------------------------------------------

def test_probe_reports_without_consuming():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.Send(np.arange(5.0), dest=1, tag=7)
        else:
            st = ctx.comm.probe(source=0, tag=7)
            buf = np.zeros(5)
            ctx.comm.Recv(buf, source=0, tag=7)  # message still there
            return (st.source, st.tag, st.count, buf[4])

    res = mpi(2, main)
    assert res.results[1] == (0, 7, 5, 4.0)


def test_probe_blocks_until_message_exists():
    def main(ctx):
        if ctx.rank == 0:
            ctx.compute(1.0)
            ctx.comm.send("late", dest=1)
        else:
            st = ctx.comm.probe(source=0)
            t_probe = ctx.now
            ctx.comm.recv(source=0)
            return (t_probe, st.count)

    res = mpi(2, main)
    t_probe, count = res.results[1]
    assert t_probe >= 1.0
    assert count == 1


def test_probe_any_source_wildcards():
    def main(ctx):
        if ctx.rank == 0:
            st = ctx.comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            data = ctx.comm.recv(source=st.source, tag=st.tag)
            return (st.source, data)
        ctx.comm.send(f"from-{ctx.rank}", dest=0, tag=ctx.rank)

    res = mpi(2, main)
    assert res.results[0] == (1, "from-1")


def test_iprobe_none_when_nothing_pending():
    def main(ctx):
        return ctx.comm.iprobe(source=ANY_SOURCE)

    res = mpi(2, main)
    assert res.results == [None, None]


def test_iprobe_sees_pending_message_after_arrival():
    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.send([1, 2], dest=1, tag=3)
            ctx.comm.recv(source=1)  # sync so rank 1 probes after arrival
        else:
            ctx.compute(0.1)  # let the message land (virtually)
            st = ctx.comm.iprobe(source=0, tag=3)
            ctx.comm.send("sync", dest=0)
            data = ctx.comm.recv(source=0, tag=3)
            return (st is not None and st.tag == 3, data)

    res = mpi(2, main)
    assert res.results[1] == (True, [1, 2])


def test_iprobe_respects_virtual_arrival_time():
    """A message posted 'now' has not physically arrived yet; iprobe at
    the same instant must not see it (the header is still in flight)."""

    def main(ctx):
        if ctx.rank == 0:
            ctx.comm.isend("x", dest=1)
            return None
        st = ctx.comm.iprobe(source=0)  # t=0, nothing can have arrived
        ctx.comm.recv(source=0)
        return st

    res = mpi(2, main)
    assert res.results[1] is None


def test_probed_rendezvous_message_visible_before_payload_moves():
    def main(ctx):
        big = np.zeros(100_000)
        if ctx.rank == 0:
            ctx.comm.Send(big, dest=1)
        else:
            st = ctx.comm.probe(source=0)
            buf = np.empty_like(big)
            ctx.comm.Recv(buf, source=0)
            return st.count

    res = mpi(2, main)
    assert res.results[1] == 100_000


# -- exscan ------------------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
def test_exscan_exclusive_prefix(p):
    def main(ctx):
        return ctx.comm.exscan(ctx.rank + 1, op=SUM)

    res = mpi(p, main)
    assert res.results[0] is None
    for r in range(1, p):
        assert res.results[r] == sum(range(1, r + 1))


def test_exscan_with_max():
    def main(ctx):
        vals = [3, 1, 4, 1, 5]
        return ctx.comm.exscan(vals[ctx.rank], op=MAX)

    res = mpi(5, main)
    assert res.results == [None, 3, 3, 4, 4]


def test_scan_vs_exscan_relationship():
    def main(ctx):
        inc = ctx.comm.scan(ctx.rank + 1, op=SUM)
        exc = ctx.comm.exscan(ctx.rank + 1, op=SUM)
        return (inc, exc)

    res = mpi(6, main)
    for r, (inc, exc) in enumerate(res.results):
        assert inc == (exc or 0) + (r + 1)


# -- reduce_scatter_block -------------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 4, 7])
def test_reduce_scatter_block_scalars(p):
    def main(ctx):
        blocks = [ctx.rank * 10 + j for j in range(ctx.size)]
        return ctx.comm.reduce_scatter_block(blocks, op=SUM)

    res = mpi(p, main)
    for j in range(p):
        assert res.results[j] == sum(i * 10 + j for i in range(p))


def test_reduce_scatter_block_arrays():
    def main(ctx):
        blocks = [np.full(3, float(ctx.rank + j)) for j in range(ctx.size)]
        return ctx.comm.reduce_scatter_block(blocks, op=SUM)

    res = mpi(3, main)
    for j in range(3):
        expected = sum(i + j for i in range(3))
        assert np.array_equal(res.results[j], np.full(3, float(expected)))


def test_reduce_scatter_block_wrong_count():
    def main(ctx):
        ctx.comm.reduce_scatter_block([1], op=SUM)

    with pytest.raises(RankFailedError) as ei:
        mpi(3, main)
    assert isinstance(ei.value.original, CommMismatchError)


# -- Allgatherv -----------------------------------------------------------------------

@pytest.mark.parametrize("p", [2, 3, 5])
def test_allgatherv_uneven_blocks(p):
    def main(ctx):
        counts = [i + 1 for i in range(ctx.size)]
        local = np.full((counts[ctx.rank], 2), float(ctx.rank))
        total = sum(counts)
        out = np.zeros((total, 2))
        ctx.comm.Allgatherv(local, out, counts)
        return out

    res = mpi(p, main)
    counts = [i + 1 for i in range(p)]
    expected = np.concatenate(
        [np.full((c, 2), float(i)) for i, c in enumerate(counts)]
    )
    for r in res.results:
        assert np.array_equal(r, expected)


def test_allgatherv_count_mismatch():
    def main(ctx):
        out = np.zeros((5, 1))
        ctx.comm.Allgatherv(np.zeros((1, 1)), out, [1] * ctx.size)

    with pytest.raises(RankFailedError) as ei:
        mpi(3, main)
    assert isinstance(ei.value.original, CommMismatchError)


# -- buffer-mode prefix/scatter reductions ---------------------------------------

@pytest.mark.parametrize("p", [1, 3, 6])
def test_buffer_scan(p):
    def main(ctx):
        send = np.array([float(ctx.rank + 1), 1.0])
        recv = np.zeros(2)
        ctx.comm.Scan(send, recv, op=SUM)
        return recv.copy()

    res = mpi(p, main)
    for r in range(p):
        assert np.array_equal(res.results[r],
                              np.array([sum(range(1, r + 2)), r + 1.0]))


def test_buffer_exscan_rank0_untouched():
    def main(ctx):
        send = np.array([float(ctx.rank + 1)])
        recv = np.full(1, -99.0)
        ctx.comm.Exscan(send, recv, op=SUM)
        return recv[0]

    res = mpi(4, main)
    assert res.results == [-99.0, 1.0, 3.0, 6.0]


def test_buffer_reduce_scatter_block():
    def main(ctx):
        p = ctx.size
        send = np.array([[float(ctx.rank * 10 + j)] for j in range(p)])
        recv = np.zeros(1)
        ctx.comm.Reduce_scatter_block(send, recv, op=SUM)
        return recv[0]

    res = mpi(3, main)
    for j in range(3):
        assert res.results[j] == sum(i * 10 + j for i in range(3))


def test_buffer_reduce_scatter_block_shape_checked():
    def main(ctx):
        ctx.comm.Reduce_scatter_block(np.zeros((1, 1)), np.zeros(1), op=SUM)

    with pytest.raises(RankFailedError) as ei:
        mpi(3, main)
    assert isinstance(ei.value.original, CommMismatchError)
