"""Collective operations vs sequential references, at several sizes."""

import numpy as np
import pytest

from repro.errors import CommMismatchError, RankFailedError
from repro.simmpi.reduce_ops import MAX, MIN, MINLOC, PROD, SUM
from repro.simmpi import collectives as coll

from tests.conftest import mpi

SIZES = [1, 2, 3, 4, 5, 7, 8, 13]


@pytest.mark.parametrize("p", SIZES)
def test_bcast_object(p):
    def main(ctx):
        data = {"v": 42} if ctx.rank == 0 else None
        return ctx.comm.bcast(data, root=0)

    res = mpi(p, main)
    assert all(r == {"v": 42} for r in res.results)


@pytest.mark.parametrize("p", [2, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_nonzero_root(p, root):
    def main(ctx):
        data = "payload" if ctx.rank == root else None
        return ctx.comm.bcast(data, root=root)

    res = mpi(p, main, kwargs={})
    assert all(r == "payload" for r in res.results)


@pytest.mark.parametrize("p", SIZES)
def test_bcast_buffer_fills_in_place(p):
    def main(ctx):
        buf = np.arange(20.0) if ctx.rank == 0 else np.zeros(20)
        ctx.comm.Bcast(buf, root=0)
        return buf.copy()

    res = mpi(p, main)
    for r in res.results:
        assert np.array_equal(r, np.arange(20.0))


@pytest.mark.parametrize("p", SIZES)
def test_reduce_sum_matches_reference(p):
    def main(ctx):
        return ctx.comm.reduce(ctx.rank + 1, op=SUM, root=0)

    res = mpi(p, main)
    assert res.results[0] == sum(range(1, p + 1))
    assert all(r is None for r in res.results[1:])


@pytest.mark.parametrize("op,ref", [(SUM, sum), (MIN, min), (MAX, max),
                                    (PROD, lambda xs: int(np.prod(xs)))])
def test_allreduce_ops(op, ref):
    p = 6

    def main(ctx):
        return ctx.comm.allreduce(ctx.rank + 1, op=op)

    res = mpi(p, main)
    expected = ref(list(range(1, p + 1)))
    assert all(r == expected for r in res.results)


def test_allreduce_arrays_elementwise():
    def main(ctx):
        return ctx.comm.allreduce(np.array([ctx.rank, 2 * ctx.rank]), op=SUM)

    res = mpi(4, main)
    for r in res.results:
        assert np.array_equal(r, np.array([6, 12]))


def test_allreduce_minloc_ties_to_lowest_rank():
    def main(ctx):
        val = 5.0 if ctx.rank in (1, 3) else 9.0
        return ctx.comm.allreduce((val, ctx.rank), op=MINLOC)

    res = mpi(5, main)
    assert all(r == (5.0, 1) for r in res.results)


def test_allreduce_float_deterministic_combination_order():
    """Tree reduction combines in canonical order: repeated runs give
    bit-identical floats."""

    def main(ctx):
        return ctx.comm.allreduce(0.1 * (ctx.rank + 1), op=SUM)

    r1 = mpi(7, main)
    r2 = mpi(7, main)
    assert r1.results == r2.results


@pytest.mark.parametrize("p", SIZES)
def test_scatter_gather_object_roundtrip(p):
    def main(ctx):
        data = [f"part{i}" for i in range(ctx.size)] if ctx.rank == 0 else None
        mine = ctx.comm.scatter(data, root=0)
        return ctx.comm.gather(mine, root=0)

    res = mpi(p, main)
    assert res.results[0] == [f"part{i}" for i in range(p)]


def test_scatter_wrong_length_raises():
    def main(ctx):
        data = [1] if ctx.rank == 0 else None
        ctx.comm.scatter(data, root=0)

    with pytest.raises(RankFailedError) as ei:
        mpi(3, main)
    assert isinstance(ei.value.original, CommMismatchError)


@pytest.mark.parametrize("p", SIZES)
def test_allgather_collects_everything_everywhere(p):
    def main(ctx):
        return ctx.comm.allgather(ctx.rank * 2)

    res = mpi(p, main)
    expected = [2 * i for i in range(p)]
    assert all(r == expected for r in res.results)


@pytest.mark.parametrize("p", [1, 2, 4, 6])
def test_alltoall_transpose(p):
    def main(ctx):
        send = [f"{ctx.rank}->{j}" for j in range(ctx.size)]
        return ctx.comm.alltoall(send)

    res = mpi(p, main)
    for j, got in enumerate(res.results):
        assert got == [f"{i}->{j}" for i in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_scan_inclusive_prefix(p):
    def main(ctx):
        return ctx.comm.scan(ctx.rank + 1, op=SUM)

    res = mpi(p, main)
    assert res.results == [sum(range(1, r + 2)) for r in range(p)]


def test_barrier_synchronises_clocks():
    def main(ctx):
        ctx.compute(0.01 * ctx.rank)
        ctx.comm.barrier()
        return ctx.now

    res = mpi(4, main)
    latest_arrival = 0.03
    assert all(t >= latest_arrival for t in res.results)
    # and nobody drifts absurdly past it (messages are microseconds)
    assert all(t < latest_arrival + 0.001 for t in res.results)


@pytest.mark.parametrize("p", [2, 3, 5, 8])
def test_scatterv_gatherv_uneven(p):
    rows = 3 * p + (p - 1)  # uneven split

    def main(ctx):
        comm = ctx.comm
        base, rem = divmod(rows, comm.size)
        counts = [base + (1 if i < rem else 0) for i in range(comm.size)]
        send = None
        if comm.rank == 0:
            send = np.arange(rows * 2, dtype=np.float64).reshape(rows, 2)
        local = np.zeros((counts[comm.rank], 2))
        comm.Scatterv(send, counts, local, root=0)
        local *= -1
        out = np.zeros((rows, 2)) if comm.rank == 0 else None
        comm.Gatherv(local, out, counts, root=0)
        return out if comm.rank == 0 else None

    res = mpi(p, main)
    expected = -np.arange(rows * 2, dtype=np.float64).reshape(rows, 2)
    assert np.array_equal(res.results[0], expected)


def test_scatterv_count_mismatch_raises():
    def main(ctx):
        counts = [1] * ctx.size
        send = np.zeros((ctx.size + 3, 1)) if ctx.rank == 0 else None
        ctx.comm.Scatterv(send, counts, np.zeros((1, 1)), root=0)

    with pytest.raises(RankFailedError) as ei:
        mpi(3, main)
    assert isinstance(ei.value.original, CommMismatchError)


def test_buffer_scatter_equal_blocks():
    def main(ctx):
        send = None
        if ctx.rank == 0:
            send = np.arange(12, dtype=np.int64).reshape(4, 3)
        recv = np.zeros((1, 3), dtype=np.int64)
        ctx.comm.Scatter(send, recv, root=0)
        return recv[0, 0]

    res = mpi(4, main)
    assert res.results == [0, 3, 6, 9]


def test_buffer_allgather():
    def main(ctx):
        send = np.full(3, ctx.rank, dtype=np.float64)
        recv = np.zeros((ctx.size, 3))
        ctx.comm.Allgather(send, recv)
        return recv.copy()

    res = mpi(4, main)
    expected = np.repeat(np.arange(4.0)[:, None], 3, axis=1)
    for r in res.results:
        assert np.array_equal(r, expected)


def test_buffer_alltoall():
    def main(ctx):
        p = ctx.size
        send = np.array([[ctx.rank * 10 + j] for j in range(p)], dtype=np.int64)
        recv = np.zeros((p, 1), dtype=np.int64)
        ctx.comm.Alltoall(send, recv)
        return recv[:, 0].copy()

    res = mpi(3, main)
    for j, got in enumerate(res.results):
        assert list(got) == [i * 10 + j for i in range(3)]


def test_buffer_reduce_and_allreduce():
    def main(ctx):
        send = np.array([ctx.rank + 1.0, 1.0])
        out = np.zeros(2)
        ctx.comm.Reduce(send, out if ctx.rank == 0 else None, op=SUM, root=0)
        all_out = np.zeros(2)
        ctx.comm.Allreduce(send, all_out, op=MAX)
        return (out.copy(), all_out.copy())

    res = mpi(4, main)
    root_out, _ = res.results[0]
    assert np.array_equal(root_out, np.array([10.0, 4.0]))
    for _, a in res.results:
        assert np.array_equal(a, np.array([4.0, 1.0]))


# -- ablation baselines -------------------------------------------------------

@pytest.mark.parametrize("p", [1, 2, 5, 8])
def test_linear_bcast_equivalent_result(p):
    def main(ctx):
        data = [1, 2] if ctx.rank == 0 else None
        return coll.bcast_linear(ctx.comm, data, root=0)

    res = mpi(p, main)
    assert all(r == [1, 2] for r in res.results)


@pytest.mark.parametrize("p", [1, 3, 8])
def test_linear_reduce_equivalent_result(p):
    def main(ctx):
        return coll.reduce_linear(ctx.comm, ctx.rank + 1, SUM, root=0)

    res = mpi(p, main)
    assert res.results[0] == sum(range(1, p + 1))


def test_central_barrier_synchronises():
    def main(ctx):
        ctx.compute(0.005 * (ctx.size - ctx.rank))
        coll.barrier_central(ctx.comm)
        return ctx.now

    res = mpi(4, main)
    assert all(t >= 0.02 for t in res.results)


def test_tree_bcast_faster_than_linear_at_scale():
    """The ablation claim: binomial bcast beats linear fan-out."""
    from repro.machine.catalog import nehalem_cluster

    payload = np.zeros(40_000)  # rendezvous-sized

    def tree(ctx):
        ctx.comm.bcast(payload if ctx.rank == 0 else None, root=0)
        return ctx.now

    def linear(ctx):
        coll.bcast_linear(ctx.comm, payload if ctx.rank == 0 else None, root=0)
        return ctx.now

    mach = nehalem_cluster(nodes=4, jitter=0.0)
    t_tree = mpi(32, tree, machine=mach).walltime
    t_linear = mpi(32, linear, machine=mach).walltime
    assert t_tree < t_linear
