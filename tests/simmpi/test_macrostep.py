"""Differential gate for macro-step capture & replay (docs/tuning.md).

The macro-step layer JITs the thread-free event loop: it records one
steady-state round per rank as a compiled template and replays later
rounds as straight-line clock/RNG arithmetic, deoptimizing back to the
interpreter when a structural guard fails.  Replay consumes the same
RNG draws and emits the same section events as the interpreted path, so
**everything observable must be bit-identical**: results, per-rank
clocks, virtual walltime, network counters, section-event streams and
the derived interval records.  Only the capture/replay/deopt counters
(and ``sched_steps``, which shrinks where the emulator drains whole
rounds without touching the ready heap) may differ.

The matrix: every zoo workload x {no faults, straggler, hang} x
p in {17, 64, 256}, macro-step on vs off, with the thread-per-rank
oracle closing the triangle at p=17 (the oracle spawns one OS thread
per rank, so larger oracle runs live in the benchmark tier — the
threadfree on/off comparison is the load-bearing one and runs at every
scale).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.timeresolved import intervals_from_run
from repro.errors import SimulationStalledError
from repro.faults.plan import FaultPlan
from repro.machine.catalog import laptop
from repro.workloads import registry

ZOO = ("halo2d", "taskfarm", "ringpipe", "bucketsort", "sparsegraph")

#: Small but non-degenerate parameterisations; every entry must stay
#: legal at p=17 (prime), 64 and 256.  ringpipe is kept to one ring
#: traversal — at p=256 each traversal is 256 pipelined stages and the
#: matrix runs it six times.
PARAMS = {
    "halo2d": {"ny": 34, "nx": 17, "steps": 3},
    "taskfarm": {"ntasks": 40, "task_flops": 1e5},
    "ringpipe": {"rounds": 1, "blocklen": 16},
    "bucketsort": {"n_local": 48},
    "sparsegraph": {"m": 4, "steps": 5},
}

FAULTS = {
    "none": None,
    "straggler": {"seed": 9, "faults": [
        {"kind": "straggler", "rank": 1, "factor": 3.0}]},
    "hang": {"seed": 9, "faults": [
        {"kind": "hang", "rank": 1, "at_time": 0.0}]},
}


def _plugin(name):
    return registry.get(name)(dict(PARAMS[name]))


def _run(name, p, *, macrostep, engine="threadfree", fault="none"):
    plan = FAULTS[fault]
    return _plugin(name).run(
        p,
        machine=laptop(cores=max(2, p)),
        seed=5,
        compute_jitter=0.04,
        noise_floor=1e-7,
        faults=FaultPlan.from_dict(plan) if plan is not None else None,
        engine=engine,
        macrostep=macrostep,
    )


def _eq(a, b):
    """Recursive exact equality that tolerates numpy payloads."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
            and a.dtype == b.dtype and np.array_equal(a, b)
        )
    if isinstance(a, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_eq(x, y) for x, y in zip(a, b)))
    if isinstance(a, dict):
        return (isinstance(b, dict) and a.keys() == b.keys()
                and all(_eq(a[k], b[k]) for k in a))
    return a == b


def _assert_observables_identical(name, a, b):
    """Everything the bit-identity contract covers (not sched_steps)."""
    plugin = _plugin(name)
    assert _eq(a.results, b.results)
    assert a.clocks == b.clocks            # exact float equality, per rank
    assert a.walltime == b.walltime
    assert a.network == b.network
    assert a.section_events == b.section_events
    assert plugin.metrics(a) == plugin.metrics(b)
    sections = type(plugin).COMM_SECTIONS
    assert _eq(intervals_from_run(a, sections), intervals_from_run(b, sections))


# -- the completing matrix ----------------------------------------------------


@pytest.mark.parametrize("p", [17, 64, 256])
@pytest.mark.parametrize("fault", ["none", "straggler"])
@pytest.mark.parametrize("name", ZOO)
def test_replay_bit_identical(name, fault, p):
    on = _run(name, p, macrostep=True, fault=fault)
    off = _run(name, p, macrostep=False, fault=fault)
    _assert_observables_identical(name, on, off)
    # Off-mode never touches the capture machinery.
    assert (off.rounds_captured, off.rounds_replayed, off.deopts) == (0, 0, 0)
    if p == 17:
        # Thread-per-rank oracle closes the triangle at the prime scale.
        th = _run(name, p, macrostep=True, engine="threads", fault=fault)
        _assert_observables_identical(name, on, th)


@pytest.mark.parametrize("p", [17, 64, 256])
@pytest.mark.parametrize("name", ZOO)
def test_hang_stalls_identically(name, p):
    """An injected hang must stall replay exactly like the interpreter."""
    waiting = {}
    for ms in (True, False):
        with pytest.raises(SimulationStalledError) as ei:
            _run(name, p, macrostep=ms, fault="hang")
        waiting[ms] = sorted(ei.value.waiting_ranks())
    assert waiting[True] == waiting[False]
    if p == 17:
        with pytest.raises(SimulationStalledError) as ei:
            _run(name, p, macrostep=True, engine="threads", fault="hang")
        assert sorted(ei.value.waiting_ranks()) == waiting[True]


# -- counter semantics --------------------------------------------------------


def test_counters_deterministic_and_replay_engages():
    """Same run twice: identical counters; steady state actually replays."""
    a = _run("halo2d", 64, macrostep=True)
    b = _run("halo2d", 64, macrostep=True)
    assert (a.rounds_captured, a.rounds_replayed, a.deopts) == \
        (b.rounds_captured, b.rounds_replayed, b.deopts)
    assert a.rounds_captured > 0
    assert a.rounds_replayed > 0
    # The scalar-allreduce REDUCE tail is intentionally outside every
    # template: each rank deopts exactly once when the shape changes.
    assert a.deopts > 0
    # sched_steps is *not* part of the bit-identity contract: the
    # emulator may drain whole rounds without per-rank heap pops.  It
    # happens to match here, but the test deliberately does not pin it.


def test_fault_scenario_exercises_deopt():
    """The deopt path must fire under fault injection, not just cleanly."""
    res = _run("halo2d", 17, macrostep=True, fault="straggler")
    assert res.rounds_replayed > 0
    assert res.deopts > 0


def test_ineligible_workload_runs_interpreted():
    """taskfarm's tag-dispatched farm never settles into a fixed round —
    capture must decline it (no template, no replay) yet stay correct."""
    res = _run("taskfarm", 17, macrostep=True)
    assert res.rounds_replayed == 0
    _assert_observables_identical(
        "taskfarm", res, _run("taskfarm", 17, macrostep=False))
