"""Network model: tiers, timing, jitter determinism, port serialisation."""

import numpy as np
import pytest

from repro.machine.catalog import laptop, nehalem_cluster
from repro.machine.spec import NetworkTier
from repro.simmpi.network import NetworkModel


@pytest.fixture
def model():
    return NetworkModel(nehalem_cluster(nodes=4, jitter=0.0), seed=1)


def test_tier_selection_intra_vs_inter(model):
    mach = model.machine
    # ranks 0..7 share node 0 at 8 ranks/node
    assert model.tier(0, 7) is mach.intra_node
    assert model.tier(0, 8) is mach.inter_node


def test_ranks_per_node_changes_tier():
    mach = nehalem_cluster(nodes=4, jitter=0.0)
    m = NetworkModel(mach, ranks_per_node=2)
    assert m.tier(0, 1) is mach.intra_node
    assert m.tier(0, 2) is mach.inter_node


def test_base_time_latency_plus_bandwidth():
    tier = NetworkTier(latency=1e-6, bandwidth=1e9)
    assert tier.base_time(0) == pytest.approx(1e-6)
    assert tier.base_time(10**6) == pytest.approx(1e-6 + 1e-3)


def test_message_timing_zero_jitter_deterministic(model):
    t1 = model.message_timing(0, 9, 1000)
    t2 = model.message_timing(0, 9, 1000)
    assert t1.wire_time == t2.wire_time
    assert t1.total > 0


def test_self_message_is_memcpy_only(model):
    t = model.message_timing(3, 3, 10**6)
    assert t.send_overhead == 0 and t.recv_overhead == 0 and t.latency == 0
    assert t.transfer == pytest.approx(10**6 / model.machine.intra_node.bandwidth)


def test_jitter_reproducible_per_channel():
    mach = nehalem_cluster(nodes=4, jitter=0.3)
    a = NetworkModel(mach, seed=42)
    b = NetworkModel(mach, seed=42)
    ta = [a.message_timing(0, 9, 100).wire_time for _ in range(20)]
    tb = [b.message_timing(0, 9, 100).wire_time for _ in range(20)]
    assert ta == tb
    assert len(set(ta)) > 1  # jitter actually varies


def test_jitter_independent_across_channels():
    mach = nehalem_cluster(nodes=4, jitter=0.3)
    m1 = NetworkModel(mach, seed=42)
    # Draw on an unrelated channel first; the (0, 9) stream must not shift.
    m1.message_timing(5, 20, 100)
    first_after_noise = m1.message_timing(0, 9, 100).wire_time

    m2 = NetworkModel(mach, seed=42)
    first_clean = m2.message_timing(0, 9, 100).wire_time
    assert first_after_noise == first_clean


def test_spikes_appear_at_configured_probability():
    tier = NetworkTier(latency=1e-6, bandwidth=1e9, spike_prob=0.5, spike_scale=100)
    mach = laptop(4)
    object.__setattr__(mach, "intra_node", tier)
    m = NetworkModel(mach, seed=7)
    times = [m.message_timing(0, 1, 100).wire_time for _ in range(200)]
    base = tier.base_time(100)
    spiked = sum(1 for t in times if t > 10 * base)
    assert 60 < spiked < 140  # ~50% of 200


def test_arrival_fifo_monotone(model):
    a1 = model.arrival_time(0, 1, depart=0.0, wire_time=1.0)
    a2 = model.arrival_time(0, 1, depart=0.5, wire_time=0.1)  # would overtake
    assert a2 >= a1


def test_port_serialisation_queues_transfers(model):
    end1 = model.reserve_port(0, earliest=0.0, transfer=1.0)
    end2 = model.reserve_port(0, earliest=0.0, transfer=1.0)
    assert end1 == pytest.approx(1.0)
    assert end2 == pytest.approx(2.0)
    # A different rank's port is free.
    assert model.reserve_port(1, earliest=0.0, transfer=1.0) == pytest.approx(1.0)


def test_port_respects_earliest(model):
    assert model.reserve_port(2, earliest=5.0, transfer=0.5) == pytest.approx(5.5)


def test_stats_accumulate(model):
    model.message_timing(0, 1, 100)
    model.message_timing(1, 2, 200)
    stats = model.stats()
    assert stats["messages"] == 2 and stats["bytes"] == 300


def test_min_latency(model):
    assert model.min_latency() == model.machine.intra_node.latency
