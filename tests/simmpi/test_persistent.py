"""Persistent requests (MPI_Send_init / Recv_init / start)."""

import numpy as np
import pytest

from repro.errors import RankFailedError, RequestError
from repro.simmpi.api import PROC_NULL

from tests.conftest import mpi


def test_persistent_pingpong_loop():
    """The idiomatic time-step pattern: init once, start+wait per step;
    the send buffer is re-read at each start."""

    def main(ctx):
        comm = ctx.comm
        peer = 1 - comm.rank
        sendbuf = np.zeros(4)
        recvbuf = np.zeros(4)
        ps = comm.Send_init(sendbuf, dest=peer, tag=3)
        pr = comm.Recv_init(recvbuf, source=peer, tag=3)
        got = []
        for step in range(5):
            sendbuf[:] = comm.rank * 100 + step
            pr.start()
            ps.start()
            pr.wait()
            ps.wait()
            got.append(recvbuf[0])
        return got

    res = mpi(2, main)
    assert res.results[0] == [100.0 + s for s in range(5)]
    assert res.results[1] == [0.0 + s for s in range(5)]


def test_persistent_restart_before_wait_rejected():
    def main(ctx):
        if ctx.rank == 0:
            pr = ctx.comm.Recv_init(np.zeros(2), source=1)
            pr.start()
            pr.start()  # previous instance still pending
        else:
            ctx.compute(1.0)
            ctx.comm.Send(np.zeros(2), dest=0)
            ctx.comm.Send(np.zeros(2), dest=0)

    with pytest.raises(RankFailedError) as ei:
        mpi(2, main)
    assert isinstance(ei.value.original, RequestError)


def test_persistent_wait_before_start_rejected():
    def main(ctx):
        ps = ctx.comm.Send_init(np.zeros(2), dest=ctx.rank)
        ps.wait()

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, RequestError)


def test_persistent_to_proc_null_is_noop_loop():
    def main(ctx):
        ps = ctx.comm.Send_init(np.zeros(2), dest=PROC_NULL)
        pr = ctx.comm.Recv_init(np.zeros(2), source=PROC_NULL)
        for _ in range(3):
            ps.start(); pr.start()
            ps.wait(); pr.wait()
        return ctx.now

    res = mpi(1, main)
    assert res.results[0] == 0.0


def test_persistent_halo_ring():
    """A persistent ring halo: each step shifts fresh data one rank."""

    def main(ctx):
        comm = ctx.comm
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        out = np.zeros(1)
        inc = np.zeros(1)
        ps = comm.Send_init(out, dest=right, tag=7)
        pr = comm.Recv_init(inc, source=left, tag=7)
        val = float(comm.rank)
        for _ in range(comm.size):
            out[0] = val
            r1 = pr.start()
            ps.start()
            r1.wait()
            ps.wait()
            val = inc[0]
        return val

    res = mpi(5, main)
    assert res.results == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_persistent_done_property():
    def main(ctx):
        if ctx.rank == 0:
            pr = ctx.comm.Recv_init(np.zeros(1), source=1)
            before = pr.done
            pr.start()
            pr.wait()
            return (before, pr.done)
        ctx.comm.Send(np.ones(1), dest=0)

    res = mpi(2, main)
    assert res.results[0] == (False, True)
