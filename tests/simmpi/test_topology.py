"""Cartesian topology helpers (dims_create, CartGrid)."""

import pytest

from repro.errors import InvalidRankError, MPIError
from repro.simmpi.api import PROC_NULL
from repro.simmpi.topology import CartGrid, dims_create


@pytest.mark.parametrize("n,nd,expected", [
    (8, 3, [2, 2, 2]),
    (12, 2, [4, 3]),
    (7, 2, [7, 1]),
    (1, 3, [1, 1, 1]),
    (24, 3, [4, 3, 2]),
    (64, 3, [4, 4, 4]),
])
def test_dims_create_balanced(n, nd, expected):
    assert dims_create(n, nd) == expected


def test_dims_create_product_invariant():
    for n in range(1, 65):
        dims = dims_create(n, 3)
        prod = dims[0] * dims[1] * dims[2]
        assert prod == n
        assert dims == sorted(dims, reverse=True)


def test_dims_create_invalid():
    with pytest.raises(MPIError):
        dims_create(0, 3)


@pytest.mark.parametrize("p", [1, 8, 27, 64])
def test_cube_valid(p):
    g = CartGrid.cube(p)
    assert g.size == p


def test_cube_invalid():
    with pytest.raises(MPIError):
        CartGrid.cube(10)


def test_coords_roundtrip():
    g = CartGrid((3, 2, 4))
    for r in range(g.size):
        assert g.rank_of(g.coords(r)) == r


def test_coords_c_order_last_dim_fastest():
    g = CartGrid((2, 2, 2))
    assert g.coords(0) == (0, 0, 0)
    assert g.coords(1) == (0, 0, 1)
    assert g.coords(2) == (0, 1, 0)
    assert g.coords(4) == (1, 0, 0)


def test_shift_interior_and_boundary():
    g = CartGrid((2, 2, 2))
    assert g.shift(0, axis=2, disp=+1) == 1
    assert g.shift(0, axis=2, disp=-1) == PROC_NULL
    assert g.shift(7, axis=0, disp=+1) == PROC_NULL
    assert g.shift(7, axis=0, disp=-1) == 3


def test_neighbors_six_faces():
    g = CartGrid((3, 3, 3))
    center = g.rank_of((1, 1, 1))
    nbrs = g.neighbors(center)
    assert len(nbrs) == 6
    assert all(r != PROC_NULL for (_, _, r) in nbrs)
    corner = g.rank_of((0, 0, 0))
    nulls = [r for (_, _, r) in g.neighbors(corner) if r == PROC_NULL]
    assert len(nulls) == 3


def test_rank_of_validates_coords():
    g = CartGrid((2, 2))
    with pytest.raises(InvalidRankError):
        g.rank_of((2, 0))
    with pytest.raises(MPIError):
        g.rank_of((0, 0, 0))


def test_coords_validates_rank():
    g = CartGrid((2, 2))
    with pytest.raises(InvalidRankError):
        g.coords(4)
