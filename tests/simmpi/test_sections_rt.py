"""MPI_Section runtime semantics (Figures 1/2 of the paper)."""

import pytest

from repro.errors import (
    RankFailedError,
    SectionMismatchError,
    SectionNestingError,
    SectionStateError,
)
from repro.simmpi.sections_rt import (
    MAIN_LABEL,
    section,
    section_enter,
    section_exit,
)

from tests.conftest import mpi


def _events_of(res, rank=None, kind=None):
    evs = res.section_events
    if rank is not None:
        evs = [e for e in evs if e.rank == rank]
    if kind is not None:
        evs = [e for e in evs if e.kind == kind]
    return evs


def test_main_section_wraps_execution():
    res = mpi(2, lambda ctx: ctx.compute(0.5))
    for rank in range(2):
        evs = _events_of(res, rank)
        assert evs[0].label == MAIN_LABEL and evs[0].kind == "enter"
        assert evs[-1].label == MAIN_LABEL and evs[-1].kind == "exit"
        assert evs[0].time == 0.0
        assert evs[-1].time == pytest.approx(0.5)


def test_enter_exit_records_paths():
    def main(ctx):
        section_enter(ctx, "outer")
        section_enter(ctx, "inner")
        section_exit(ctx, "inner")
        section_exit(ctx, "outer")

    res = mpi(1, main)
    inner = [e for e in res.section_events if e.label == "inner"]
    assert inner[0].path == (MAIN_LABEL, "outer", "inner")


def test_context_manager_pairs_on_exception():
    def main(ctx):
        try:
            with section(ctx, "risky"):
                raise KeyError("oops")
        except KeyError:
            pass
        return "survived"

    res = mpi(1, main)
    assert res.results[0] == "survived"
    kinds = [(e.label, e.kind) for e in res.section_events if e.label == "risky"]
    assert kinds == [("risky", "enter"), ("risky", "exit")]


def test_mismatched_exit_label_raises():
    def main(ctx):
        section_enter(ctx, "a")
        section_exit(ctx, "b")

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, SectionNestingError)


def test_exit_without_enter_raises():
    def main(ctx):
        section_exit(ctx, MAIN_LABEL)  # pops MAIN illegally... then a 2nd
        section_exit(ctx, "ghost")

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, SectionNestingError)


def test_leaked_open_section_raises_at_finalize():
    def main(ctx):
        section_enter(ctx, "never-closed")

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, SectionNestingError)


def test_non_collective_sections_detected_at_finalize():
    def main(ctx):
        if ctx.rank == 0:
            with section(ctx, "only-on-zero"):
                pass

    with pytest.raises(SectionMismatchError):
        mpi(2, main)


def test_different_order_detected():
    def main(ctx):
        labels = ["x", "y"] if ctx.rank == 0 else ["y", "x"]
        for lab in labels:
            with section(ctx, lab):
                pass

    with pytest.raises(SectionMismatchError):
        mpi(2, main)


def test_validation_can_be_disabled():
    def main(ctx):
        if ctx.rank == 0:
            with section(ctx, "solo"):
                pass

    res = mpi(2, main, validate_sections=False)
    assert any(e.label == "solo" for e in res.section_events)


def test_empty_label_rejected():
    def main(ctx):
        section_enter(ctx, "")

    with pytest.raises(RankFailedError) as ei:
        mpi(1, main)
    assert isinstance(ei.value.original, SectionStateError)


def test_sections_on_subcommunicator():
    def main(ctx):
        sub = ctx.comm.split(color=ctx.rank % 2)
        with section(ctx, "sub-phase", comm=sub):
            ctx.compute(0.001)

    res = mpi(4, main)
    evs = [e for e in res.section_events if e.label == "sub-phase"]
    assert len(evs) == 8  # enter+exit on each of 4 ranks
    comm_ids = {e.comm_id for e in evs}
    assert len(comm_ids) == 2  # two distinct split communicators


def test_repeated_instances_counted_separately():
    def main(ctx):
        for _ in range(3):
            with section(ctx, "loop"):
                ctx.compute(0.001)

    res = mpi(2, main)
    enters = [e for e in res.section_events if e.label == "loop" and e.kind == "enter"]
    assert len(enters) == 6


def test_timestamps_monotone_per_rank():
    def main(ctx):
        with section(ctx, "a"):
            ctx.compute(0.01)
        with section(ctx, "b"):
            ctx.compute(0.02)

    res = mpi(1, main)
    times = [e.time for e in res.section_events]
    assert times == sorted(times)


def test_data_blob_preserved_between_enter_and_leave():
    from repro.simmpi.pmpi import Tool

    class BlobTool(Tool):
        def __init__(self):
            self.checks = []

        def section_enter_cb(self, comm_id, label, data, rank, t):
            data[0:4] = b"MARK"

        def section_leave_cb(self, comm_id, label, data, rank, t):
            self.checks.append(bytes(data[0:4]))

    tool = BlobTool()
    mpi(2, lambda ctx: None, tools=[tool])
    assert tool.checks and all(c == b"MARK" for c in tool.checks)


def test_data_blob_is_32_bytes():
    from repro.simmpi.api import MAX_SECTION_DATA
    from repro.simmpi.pmpi import Tool

    sizes = []

    class SizeTool(Tool):
        def section_enter_cb(self, comm_id, label, data, rank, t):
            sizes.append(len(data))

    mpi(1, lambda ctx: None, tools=[SizeTool()])
    assert sizes == [MAX_SECTION_DATA] and sizes[0] == 32


def test_nested_blobs_are_independent():
    from repro.simmpi.pmpi import Tool

    seen = []

    class NestTool(Tool):
        def section_enter_cb(self, comm_id, label, data, rank, t):
            data[0:1] = label[:1].encode()

        def section_leave_cb(self, comm_id, label, data, rank, t):
            seen.append((label, bytes(data[0:1])))

    def main(ctx):
        with section(ctx, "a"):
            with section(ctx, "b"):
                pass

    mpi(1, main, tools=[NestTool()])
    assert ("b", b"b") in seen and ("a", b"a") in seen
