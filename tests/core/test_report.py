"""Plain-text rendering helpers."""

from repro.core.report import banner, fmt, format_dict_rows, format_series, format_table


def test_fmt_floats():
    assert fmt(1.23456) == "1.235"
    assert fmt(0.0) == "0"
    assert fmt(1.5e-7) == "1.500e-07"
    assert fmt(1234567.0) == "1.235e+06"
    assert fmt(12, prec=3) == "12"
    assert fmt(None) == "None"
    assert fmt(True) == "True"


def test_format_table_aligned():
    out = format_table(["a", "long_header"], [[1, 2.5], [30, 4.0]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "long_header" in lines[0]
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all rows equally wide


def test_format_table_title():
    out = format_table(["x"], [[1]], title="T")
    assert out.splitlines()[0] == "T"


def test_format_dict_rows_column_order():
    rows = [{"b": 1, "a": 2}, {"b": 3, "a": 4}]
    out = format_dict_rows(rows)
    header = out.splitlines()[0]
    assert header.index("b") < header.index("a")


def test_format_dict_rows_explicit_columns_and_missing():
    rows = [{"a": 1}, {"a": 2, "c": 3}]
    out = format_dict_rows(rows, columns=["a", "c"])
    assert "c" in out.splitlines()[0]


def test_format_dict_rows_empty():
    assert format_dict_rows([], title="hey") == "hey"


def test_format_series():
    out = format_series("p", [1, 2], {"s": [1.0, 2.0], "b": [3.0, 4.0]})
    lines = out.splitlines()
    assert lines[0].split("|")[0].strip() == "p"
    assert len(lines) == 4


def test_banner_contains_text():
    out = banner("hello")
    assert "hello" in out and out.count("=") >= 100
