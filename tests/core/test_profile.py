"""SectionProfile / ScalingProfile containers."""

import pytest

from repro.core.profile import ScalingProfile, SectionProfile
from repro.errors import AnalysisError, InsufficientDataError
from repro.simmpi.sections_rt import SectionEvent, section

from tests.conftest import mpi


def _profile_from(main, p, **kw):
    res = mpi(p, main, **kw)
    return SectionProfile.from_run(res)


def _two_phase(ctx):
    with section(ctx, "compute"):
        ctx.compute(1.0)
    with section(ctx, "post"):
        ctx.compute(0.25)


def test_from_run_basic_lookups():
    prof = _profile_from(_two_phase, 2)
    assert prof.n_ranks == 2
    assert prof.walltime == pytest.approx(1.25, rel=1e-6)
    assert set(prof.labels()) == {"MPI_MAIN", "compute", "post"}
    assert prof.total("compute") == pytest.approx(2.0)
    assert prof.avg_per_process("compute") == pytest.approx(1.0)
    assert prof.count("compute") == 2


def test_unknown_label_raises():
    prof = _profile_from(_two_phase, 1)
    with pytest.raises(AnalysisError):
        prof.total("nope")


def test_percent_of_execution():
    prof = _profile_from(_two_phase, 2)
    assert prof.percent_of_execution("compute") == pytest.approx(80.0, rel=1e-6)
    assert prof.percent_of_execution("post") == pytest.approx(20.0, rel=1e-6)


def test_breakdown_excludes_main_by_default():
    prof = _profile_from(_two_phase, 1)
    bd = prof.breakdown()
    assert "MPI_MAIN" not in bd
    assert sum(bd.values()) == pytest.approx(100.0, rel=1e-6)
    assert "MPI_MAIN" in prof.breakdown(include_main=True)


def test_rank_times_per_rank():
    def main(ctx):
        with section(ctx, "w"):
            ctx.compute(float(ctx.rank + 1))

    prof = _profile_from(main, 3)
    rt = prof.rank_times("w")
    assert rt[0] == pytest.approx(1.0)
    assert rt[2] == pytest.approx(3.0)


def test_exclusive_vs_inclusive_totals():
    def main(ctx):
        with section(ctx, "outer"):
            ctx.compute(1.0)
            with section(ctx, "inner"):
                ctx.compute(2.0)

    prof = _profile_from(main, 1)
    assert prof.total("outer") == pytest.approx(3.0)
    assert prof.total("outer", exclusive=True) == pytest.approx(1.0)


def test_scaling_profile_series():
    sp = ScalingProfile("p")
    for p in (1, 2, 4):
        for _ in range(2):
            sp.add(p, _profile_from(_two_phase, p))
    assert sp.scales() == [1, 2, 4]
    assert sp.reps(2) == 2
    assert sp.sequential_time() == pytest.approx(1.25, rel=1e-6)
    # compute is unparallelised in this toy main → speedup ~1
    assert sp.speedup(4) == pytest.approx(1.0, rel=1e-3)
    xs, totals = sp.total_series("compute")
    assert xs == [1, 2, 4]
    assert totals[2] == pytest.approx(4.0, rel=1e-6)
    xs, avgs = sp.avg_series("compute")
    assert avgs == pytest.approx([1.0, 1.0, 1.0], rel=1e-6)
    xs, pcts = sp.percent_series("compute")
    assert pcts[0] == pytest.approx(80.0, rel=1e-4)


def test_scaling_profile_missing_scale():
    sp = ScalingProfile()
    sp.add(2, _profile_from(_two_phase, 2))
    with pytest.raises(InsufficientDataError):
        sp.runs(4)
    with pytest.raises(InsufficientDataError):
        sp.sequential_time()


def test_scaling_profile_rejects_bad_scale():
    sp = ScalingProfile()
    with pytest.raises(AnalysisError):
        sp.add(0, _profile_from(_two_phase, 1))


def test_from_events_direct():
    events = [
        SectionEvent(0, ("w",), "s", "enter", 0.0, ("s",)),
        SectionEvent(0, ("w",), "s", "exit", 2.0, ("s",)),
    ]
    prof = SectionProfile.from_events(events, n_ranks=1, walltime=2.0)
    assert prof.total("s") == pytest.approx(2.0)


def test_meta_carried():
    def main(ctx):
        pass

    res = mpi(1, main)
    prof = SectionProfile.from_run(res, workload="toy")
    assert prof.meta["workload"] == "toy"
    assert prof.seed == res.seed
