"""Inflexion-point detection on scaling curves."""

import pytest

from repro.core.inflexion import bound_at_inflexion, find_inflexion
from repro.errors import InsufficientDataError, ModelDomainError


def test_clear_u_shape_detected():
    ps = [1, 2, 4, 8, 16, 32]
    ts = [10.0, 5.0, 2.5, 1.4, 1.8, 3.0]
    pt = find_inflexion(ps, ts)
    assert pt is not None
    assert pt.p == 8 and pt.exhausted


def test_paper_figure10_shape():
    """Lagrange section times on KNL: minimum at 24 threads, rising after."""
    ps = [1, 2, 4, 8, 16, 24, 32, 64]
    ts = [882.5, 450.0, 230.0, 125.0, 75.0, 64.29, 70.0, 95.0]
    pt = find_inflexion(ps, ts)
    assert pt.p == 24 and pt.exhausted
    assert bound_at_inflexion(882.48, ps, ts) == pytest.approx(882.48 / 64.29)


def test_monotone_decrease_has_no_inflexion():
    assert find_inflexion([1, 2, 4, 8], [8.0, 4.0, 2.0, 1.0]) is None


def test_plateau_reports_first_of_valley_not_exhausted():
    pt = find_inflexion([1, 2, 4, 8], [8.0, 4.0, 4.01, 3.99], rel_tol=0.02)
    assert pt is not None
    assert pt.p == 2
    assert not pt.exhausted


def test_flat_tail_at_end_detected_as_plateau():
    pt = find_inflexion([1, 2, 4], [4.0, 2.0, 1.99], rel_tol=0.02)
    assert pt is not None and pt.p == 2 and not pt.exhausted


def test_noise_bump_within_tolerance_ignored():
    # 2% wiggle around a decreasing curve must not fake an inflexion.
    ps = [1, 2, 4, 8]
    ts = [8.0, 4.04, 4.0, 2.0]
    assert find_inflexion(ps, ts, rel_tol=0.05) is None


def test_exhausted_requires_clear_rise():
    pt = find_inflexion([1, 2, 4, 8], [4.0, 2.0, 1.0, 1.005], rel_tol=0.02)
    assert pt is not None and not pt.exhausted


def test_validation():
    with pytest.raises(InsufficientDataError):
        find_inflexion([1], [1.0])
    with pytest.raises(InsufficientDataError):
        find_inflexion([1, 2], [1.0])
    with pytest.raises(ModelDomainError):
        find_inflexion([2, 1], [1.0, 2.0])
    with pytest.raises(ModelDomainError):
        find_inflexion([1, 2], [1.0, 0.0])


def test_bound_at_inflexion_none_when_still_scaling():
    assert bound_at_inflexion(10.0, [1, 2, 4], [4.0, 2.0, 1.0]) is None


def test_bound_at_inflexion_domain():
    with pytest.raises(ModelDomainError):
        bound_at_inflexion(0.0, [1, 2, 4], [4.0, 2.0, 2.1])
