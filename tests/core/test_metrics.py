"""Figure 3 derived section metrics."""

import pytest

from repro.core.metrics import SectionInstanceTiming
from repro.errors import AnalysisError


@pytest.fixture
def instance():
    """Three ranks entering/leaving with stagger (Figure 3's picture)."""
    inst = SectionInstanceTiming("HALO", ("w",), 0)
    inst.t_in = {0: 10.0, 1: 10.5, 2: 11.0}
    inst.t_out = {0: 12.0, 1: 13.0, 2: 14.0}
    return inst


def test_tmin_first_entry(instance):
    assert instance.tmin == 10.0


def test_tmax_last_exit(instance):
    assert instance.tmax == 14.0


def test_span(instance):
    assert instance.span == pytest.approx(4.0)


def test_tsection_paper_definition(instance):
    """Tsection = Tout − Tmin (not Tout − own Tin)."""
    assert instance.tsection(0) == pytest.approx(2.0)
    assert instance.tsection(2) == pytest.approx(4.0)


def test_dwell_conventional_residence(instance):
    assert instance.dwell(0) == pytest.approx(2.0)
    assert instance.dwell(2) == pytest.approx(3.0)


def test_mean_tsection(instance):
    assert instance.mean_tsection == pytest.approx((2.0 + 3.0 + 4.0) / 3)


def test_entry_imbalance_per_rank(instance):
    """imb_in(r) = Tin(r) − Tmin."""
    assert instance.entry_imbalance(0) == 0.0
    assert instance.entry_imbalance(1) == pytest.approx(0.5)
    assert instance.entry_imbalance(2) == pytest.approx(1.0)


def test_entry_imbalance_stats(instance):
    assert instance.entry_imbalance_mean == pytest.approx(0.5)
    assert instance.entry_imbalance_var == pytest.approx(
        ((0.0 - 0.5) ** 2 + 0 + (1.0 - 0.5) ** 2) / 3
    )


def test_aggregate_imbalance(instance):
    """imb = (Tmax − Tmin) − mean(Tsection)."""
    assert instance.imbalance == pytest.approx(4.0 - 3.0)


def test_perfectly_balanced_instance_zero_imbalance():
    inst = SectionInstanceTiming("X", ("w",), 0)
    inst.t_in = {0: 1.0, 1: 1.0}
    inst.t_out = {0: 2.0, 1: 2.0}
    assert inst.imbalance == pytest.approx(0.0)
    assert inst.entry_imbalance_mean == 0.0


def test_imbalance_nonnegative_for_any_exit_pattern():
    inst = SectionInstanceTiming("X", ("w",), 0)
    inst.t_in = {0: 0.0, 1: 0.0, 2: 0.0}
    inst.t_out = {0: 5.0, 1: 1.0, 2: 3.0}
    # Tmax−Tmin = 5; mean Tsection = 3 → imb = 2
    assert inst.imbalance == pytest.approx(2.0)
    assert inst.imbalance >= 0


def test_ranks_sorted(instance):
    assert instance.ranks == (0, 1, 2)


def test_as_dict_summary(instance):
    d = instance.as_dict()
    assert d["label"] == "HALO" and d["ranks"] == 3
    assert d["imbalance"] == pytest.approx(1.0)


def test_incomplete_instance_rejected():
    inst = SectionInstanceTiming("X", ("w",), 0)
    inst.t_in = {0: 1.0, 1: 1.0}
    inst.t_out = {0: 2.0}
    with pytest.raises(AnalysisError):
        _ = inst.tmax


def test_empty_instance_rejected():
    inst = SectionInstanceTiming("X", ("w",), 0)
    with pytest.raises(AnalysisError):
        _ = inst.tmin
