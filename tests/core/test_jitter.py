"""Jitter-accumulation analysis."""

import numpy as np
import pytest

from repro.core.jitter import JitterReport, analyze_jitter
from repro.core.metrics import SectionInstanceTiming
from repro.errors import InsufficientDataError
from repro.machine.catalog import nehalem_cluster
from repro.tools import TraceTool
from repro.workloads.convolution import ConvolutionBenchmark, ConvolutionConfig


def _inst(occ, t_ins, dur=1.0, label="s"):
    inst = SectionInstanceTiming(label, ("w",), occ)
    inst.t_in = {r: t for r, t in enumerate(t_ins)}
    inst.t_out = {r: t + dur for r, t in enumerate(t_ins)}
    return inst


def test_synchronised_loop_flat_drift():
    insts = [_inst(i, [10.0 * i, 10.0 * i + 0.1]) for i in range(8)]
    rep = analyze_jitter(insts)
    assert rep.mean_entry_imbalance == pytest.approx(0.1)
    assert rep.drift_ratio == pytest.approx(1.0)
    assert not rep.accumulating


def test_random_walk_desync_detected():
    rng = np.random.default_rng(0)
    lateness = np.cumsum(np.abs(rng.normal(0, 0.05, size=32)))  # grows
    insts = [_inst(i, [10.0 * i, 10.0 * i + lateness[i]]) for i in range(32)]
    rep = analyze_jitter(insts)
    assert rep.drift_ratio > 2.0
    assert rep.accumulating


def test_jitter_fraction_bounds():
    insts = [_inst(i, [0.0 + 5 * i, 0.5 + 5 * i], dur=1.0) for i in range(4)]
    rep = analyze_jitter(insts)
    assert 0.0 <= rep.jitter_fraction <= 1.0
    # span 1.5, mean Tsection 1.25 → imbalance 0.25 per instance
    assert rep.mean_imbalance == pytest.approx(0.25)


def test_validation():
    with pytest.raises(InsufficientDataError):
        analyze_jitter([_inst(0, [0.0])])
    mixed = [_inst(i, [0.0, 0.1]) for i in range(3)] + [
        _inst(3, [0.0, 0.1], label="other")
    ]
    with pytest.raises(InsufficientDataError):
        analyze_jitter(mixed)


def test_zero_head_infinite_drift():
    insts = [_inst(i, [0.0 + i, 0.0 + i]) for i in range(4)]
    insts += [_inst(4, [10.0, 10.5])]
    rep = analyze_jitter(insts)
    assert rep.drift_ratio == np.inf
    assert rep.accumulating


def test_on_real_convolution_halo():
    """The paper's hypothesis on our simulated data: with an OS-noise
    floor, the HALO section's entry stagger is persistent across the
    time-step loop (jitter the shrunken compute can no longer hide)."""
    tool = TraceTool(label_filter=lambda lab: lab == "HALO")
    bench = ConvolutionBenchmark(ConvolutionConfig(height=64, width=96, steps=40))
    bench.run(
        8,
        machine=nehalem_cluster(nodes=1, jitter=0.05),
        compute_jitter=0.05,
        noise_floor=100e-6,
        tools=[tool],
        seed=5,
    )
    insts = tool.coarse_view()
    rep = analyze_jitter(insts)
    assert rep.instances == 40
    assert rep.mean_entry_imbalance > 0
    assert rep.jitter_fraction > 0.2  # imbalance is a first-order cost
