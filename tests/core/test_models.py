"""Predictive scaling models: power-law fits, Eq. 5 prediction, USL."""

import math

import numpy as np
import pytest

from repro.core.models import (
    SectionScalingModel,
    USLFit,
    fit_power_law,
    fit_usl,
    fit_usl_profile,
)
from repro.core.profile import ScalingProfile, SectionProfile
from repro.errors import InsufficientDataError, ModelDomainError
from repro.simmpi.sections_rt import SectionEvent


def _synthetic_profile(n_ranks, walltime, sections):
    events = []
    for rank in range(n_ranks):
        t = 0.0
        for label, dt in sections.items():
            events.append(SectionEvent(rank, ("w",), label, "enter", t, (label,)))
            t += dt
            events.append(SectionEvent(rank, ("w",), label, "exit", t, (label,)))
    return SectionProfile.from_events(events, n_ranks, walltime)


# -- power law --------------------------------------------------------------

def test_power_law_exact_roundtrip():
    ps = [1, 2, 4, 8, 16, 32, 64]
    a, b, c = 10.0, 0.9, 0.5
    ts = [a / p**b + c for p in ps]
    fit = fit_power_law(ps, ts, "x")
    assert fit.a == pytest.approx(a, rel=1e-4)
    assert fit.b == pytest.approx(b, rel=1e-4)
    assert fit.c == pytest.approx(c, rel=1e-3)
    assert fit.rmse < 1e-8
    assert fit.time(128) == pytest.approx(a / 128**b + c, rel=1e-3)


def test_power_law_ideal_section_detected():
    ps = [1, 2, 4, 8, 16]
    ts = [8.0 / p for p in ps]
    fit = fit_power_law(ps, ts)
    assert fit.scales_ideally
    assert fit.floor == pytest.approx(0.0, abs=1e-6)


def test_power_law_serial_section_detected():
    ts = [2.0] * 5
    fit = fit_power_law([1, 2, 4, 8, 16], ts)
    assert fit.floor == pytest.approx(2.0, rel=0.05)
    assert not fit.scales_ideally


def test_power_law_validation():
    with pytest.raises(InsufficientDataError):
        fit_power_law([1, 2], [1.0, 0.5])
    with pytest.raises(ModelDomainError):
        fit_power_law([0, 1, 2], [1.0, 1.0, 1.0])
    with pytest.raises(ModelDomainError):
        fit_power_law([1, 2, 4], [0.0, 0.1, 0.1])
    fit = fit_power_law([1, 2, 4], [4.0, 2.0, 1.0])
    with pytest.raises(ModelDomainError):
        fit.time(0)


# -- SectionScalingModel --------------------------------------------------------

def _amdahl_like_profile(fs=0.1, total=100.0, scales=(1, 2, 4, 8, 16, 32)):
    sp = ScalingProfile("p")
    for p in scales:
        par = total * (1 - fs) / p
        ser = total * fs
        sp.add(p, _synthetic_profile(p, par + ser, {"par": par, "ser": ser}))
    return sp


def test_model_predicts_held_out_scales():
    profile = _amdahl_like_profile()
    model = SectionScalingModel.fit_profile(profile, max_scale=8)
    # predictions at held-out p=16 and p=32 match the measurements
    for p in (16, 32):
        assert model.walltime(p) == pytest.approx(
            profile.mean_walltime(p), rel=0.02
        )
        assert model.speedup(p) == pytest.approx(profile.speedup(p), rel=0.02)


def test_model_binding_section_and_bounds():
    model = SectionScalingModel.fit_profile(_amdahl_like_profile(fs=0.2))
    label, bound = model.binding_section(1024)
    assert label == "ser"
    assert bound == pytest.approx(5.0, rel=0.05)  # Amdahl limit 1/0.2
    assert model.bound("par", 2) < model.bound("par", 64)


def test_model_asymptotic_speedup_matches_amdahl():
    model = SectionScalingModel.fit_profile(_amdahl_like_profile(fs=0.1))
    assert model.asymptotic_speedup() == pytest.approx(10.0, rel=0.05)


def test_model_saturation_scale_reasonable():
    model = SectionScalingModel.fit_profile(_amdahl_like_profile(fs=0.1))
    p_sat = model.saturation_scale(gain_threshold=0.02)
    # with fs=0.1 the returns diminish in the tens-to-hundreds range
    assert 16 <= p_sat <= 1024


def test_model_fully_parallel_has_infinite_ceiling():
    sp = ScalingProfile("p")
    for p in (1, 2, 4, 8):
        sp.add(p, _synthetic_profile(p, 8.0 / p, {"par": 8.0 / p}))
    model = SectionScalingModel.fit_profile(sp)
    assert model.asymptotic_speedup() > 1e3


def test_model_requires_enough_scales():
    with pytest.raises(InsufficientDataError):
        SectionScalingModel.fit_profile(_amdahl_like_profile(scales=(1, 2)))


def test_model_unknown_label_bound():
    model = SectionScalingModel.fit_profile(_amdahl_like_profile())
    with pytest.raises(ModelDomainError):
        model.bound("nope", 4)


# -- USL ------------------------------------------------------------------------

def test_usl_exact_roundtrip():
    ref = USLFit(sigma=0.05, kappa=5e-4, rmse=0.0)
    ps = [1, 2, 4, 8, 16, 32, 64, 128]
    fit = fit_usl(ps, [ref.speedup(p) for p in ps])
    assert fit.sigma == pytest.approx(0.05, abs=1e-4)
    assert fit.kappa == pytest.approx(5e-4, rel=1e-2)


def test_usl_peak_formula():
    fit = USLFit(sigma=0.1, kappa=1e-3, rmse=0.0)
    p_star = fit.peak_scale
    assert p_star == pytest.approx(math.sqrt(0.9 / 1e-3))
    # peak really is a maximum
    assert fit.speedup(p_star) >= fit.speedup(p_star * 2)
    assert fit.speedup(p_star) >= fit.speedup(max(1.0, p_star / 2))
    assert fit.retrograde


def test_usl_kappa_zero_reduces_to_amdahl():
    from repro.core.speedup import amdahl_speedup

    fit = USLFit(sigma=0.2, kappa=0.0, rmse=0.0)
    for p in (1, 8, 64):
        assert fit.speedup(p) == pytest.approx(amdahl_speedup(p, 0.2), rel=1e-9)
    assert math.isinf(fit.peak_scale)
    assert not fit.retrograde


def test_usl_validation():
    with pytest.raises(InsufficientDataError):
        fit_usl([1, 2], [1.0, 1.5])
    with pytest.raises(ModelDomainError):
        fit_usl([1, 2, 4], [1.0, -1.0, 2.0])
    with pytest.raises(ModelDomainError):
        USLFit(0.1, 0.0, 0.0).speedup(0.5)


def test_usl_detects_retrograde_measurements():
    """Speedup that declines past a peak forces kappa > 0."""
    ps = [1, 2, 4, 8, 16, 32, 64]
    ss = [1.0, 1.9, 3.4, 5.2, 6.0, 5.5, 4.2]
    fit = fit_usl(ps, ss)
    assert fit.retrograde
    assert 8 <= fit.peak_scale <= 40


def test_usl_profile_helper():
    profile = _amdahl_like_profile(fs=0.1)
    fit = fit_usl_profile(profile)
    assert fit.sigma == pytest.approx(0.1, abs=0.02)
    assert fit.kappa == pytest.approx(0.0, abs=1e-4)
