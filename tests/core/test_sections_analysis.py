"""Instance reconstruction and inclusive/exclusive time accounting."""

import pytest

from repro.core.sections import build_instances, rank_section_times
from repro.errors import AnalysisError
from repro.simmpi.sections_rt import SectionEvent, section

from tests.conftest import mpi


def _ev(rank, label, kind, t, path, comm=("w",)):
    return SectionEvent(rank, comm, label, kind, t, path)


def test_build_instances_single_rank():
    events = [
        _ev(0, "a", "enter", 1.0, ("a",)),
        _ev(0, "a", "exit", 3.0, ("a",)),
    ]
    out = build_instances(events)
    assert len(out) == 1
    inst = out[0]
    assert inst.label == "a" and inst.occurrence == 0
    assert inst.timing.t_in == {0: 1.0} and inst.timing.t_out == {0: 3.0}


def test_build_instances_matches_across_ranks_by_occurrence():
    events = []
    for rank in (0, 1):
        for i in range(2):
            events.append(_ev(rank, "x", "enter", i * 10.0 + rank, ("x",)))
            events.append(_ev(rank, "x", "exit", i * 10.0 + rank + 1, ("x",)))
    out = build_instances(events)
    assert len(out) == 2
    first = [s for s in out if s.occurrence == 0][0]
    assert set(first.timing.t_in) == {0, 1}


def test_build_instances_nested_paths_distinct():
    events = [
        _ev(0, "outer", "enter", 0.0, ("outer",)),
        _ev(0, "inner", "enter", 1.0, ("outer", "inner")),
        _ev(0, "inner", "exit", 2.0, ("outer", "inner")),
        _ev(0, "outer", "exit", 3.0, ("outer",)),
    ]
    out = build_instances(events)
    paths = {s.path for s in out}
    assert paths == {("outer",), ("outer", "inner")}


def test_build_instances_unbalanced_raises():
    with pytest.raises(AnalysisError):
        build_instances([_ev(0, "a", "exit", 1.0, ("a",))])
    with pytest.raises(AnalysisError):
        build_instances([_ev(0, "a", "enter", 1.0, ("a",))])


def test_rank_section_times_exclusive_subtracts_children():
    events = [
        _ev(0, "outer", "enter", 0.0, ("outer",)),
        _ev(0, "inner", "enter", 2.0, ("outer", "inner")),
        _ev(0, "inner", "exit", 5.0, ("outer", "inner")),
        _ev(0, "outer", "exit", 10.0, ("outer",)),
    ]
    times = rank_section_times(events)
    outer = times[("outer",)]
    inner = times[("outer", "inner")]
    assert outer.inclusive[0] == pytest.approx(10.0)
    assert outer.exclusive[0] == pytest.approx(7.0)
    assert inner.inclusive[0] == pytest.approx(3.0)
    assert inner.exclusive[0] == pytest.approx(3.0)


def test_rank_section_times_repeated_instances_summed():
    events = []
    for i in range(3):
        events.append(_ev(0, "s", "enter", 10.0 * i, ("s",)))
        events.append(_ev(0, "s", "exit", 10.0 * i + 2.0, ("s",)))
    times = rank_section_times(events)
    pt = times[("s",)]
    assert pt.inclusive[0] == pytest.approx(6.0)
    assert pt.count[0] == 3


def test_rank_section_times_multiple_ranks_separate():
    events = [
        _ev(0, "s", "enter", 0.0, ("s",)),
        _ev(1, "s", "enter", 0.0, ("s",)),
        _ev(0, "s", "exit", 1.0, ("s",)),
        _ev(1, "s", "exit", 4.0, ("s",)),
    ]
    pt = rank_section_times(events)[("s",)]
    assert pt.inclusive == {0: 1.0, 1: 4.0}
    assert pt.total_inclusive() == pytest.approx(5.0)


def test_rank_section_times_from_real_run_matches_engine():
    """End-to-end: events from a real simulated run reconstruct times
    consistent with the engine's clocks."""

    def main(ctx):
        with section(ctx, "work"):
            ctx.compute(1.0)
        with section(ctx, "rest"):
            ctx.compute(0.5)

    res = mpi(2, main)
    times = rank_section_times(res.section_events)
    work = next(pt for p, pt in times.items() if p[-1] == "work")
    rest = next(pt for p, pt in times.items() if p[-1] == "rest")
    assert work.inclusive[0] == pytest.approx(1.0)
    assert rest.inclusive[1] == pytest.approx(0.5)
    main_pt = next(pt for p, pt in times.items() if p[-1] == "MPI_MAIN")
    assert main_pt.exclusive[0] == pytest.approx(0.0, abs=1e-9)


def test_instances_from_real_run_have_fig3_metrics():
    def main(ctx):
        ctx.compute(0.1 * ctx.rank)  # staggered entry
        with section(ctx, "phase"):
            ctx.compute(1.0)
        ctx.comm.barrier()

    res = mpi(3, main)
    insts = [s for s in build_instances(res.section_events) if s.label == "phase"]
    assert len(insts) == 1
    timing = insts[0].timing
    assert timing.tmin == pytest.approx(0.0)
    assert timing.entry_imbalance(2) == pytest.approx(0.2)
    assert timing.imbalance >= 0
