"""Classical speedup laws (Equation 1–2 and friends)."""

import math

import pytest

from repro.core.speedup import (
    amdahl_limit,
    amdahl_speedup,
    efficiency,
    fit_amdahl,
    gustafson_speedup,
    karp_flatt,
    serial_fraction_from_speedup,
    speedup,
)
from repro.errors import InsufficientDataError, ModelDomainError


def test_speedup_eq1():
    assert speedup(100.0, 25.0) == 4.0


def test_speedup_domain():
    with pytest.raises(ModelDomainError):
        speedup(-1.0, 1.0)
    with pytest.raises(ModelDomainError):
        speedup(1.0, 0.0)


def test_efficiency():
    assert efficiency(100.0, 25.0, 8) == pytest.approx(0.5)
    with pytest.raises(ModelDomainError):
        efficiency(1.0, 1.0, 0)


def test_amdahl_limits():
    assert amdahl_speedup(1, 0.5) == 1.0
    assert amdahl_speedup(10**9, 0.1) == pytest.approx(10.0, rel=1e-6)
    assert amdahl_limit(0.1) == pytest.approx(10.0)
    assert amdahl_limit(0.0) == math.inf


def test_amdahl_fully_parallel_is_ideal():
    assert amdahl_speedup(64, 0.0) == pytest.approx(64.0)


def test_amdahl_domain():
    with pytest.raises(ModelDomainError):
        amdahl_speedup(0, 0.1)
    with pytest.raises(ModelDomainError):
        amdahl_speedup(4, 1.5)


def test_gustafson_linear_in_p():
    assert gustafson_speedup(1, 0.3) == 1.0
    assert gustafson_speedup(10, 0.0) == 10.0
    assert gustafson_speedup(10, 1.0) == 1.0
    assert gustafson_speedup(10, 0.3) == pytest.approx(10 - 0.3 * 9)


def test_karp_flatt_recovers_amdahl_fraction():
    fs = 0.07
    for p in (2, 8, 64, 512):
        s = amdahl_speedup(p, fs)
        assert karp_flatt(s, p) == pytest.approx(fs, rel=1e-9)


def test_karp_flatt_matches_paper_example():
    # Paper Section 5.2: speedup 8.08 at 24 threads.
    e = karp_flatt(8.08, 24)
    assert 0.05 < e < 0.12


def test_karp_flatt_domain():
    with pytest.raises(ModelDomainError):
        karp_flatt(2.0, 1)
    with pytest.raises(ModelDomainError):
        karp_flatt(0.0, 4)


def test_serial_fraction_alias():
    assert serial_fraction_from_speedup(4.0, 8) == karp_flatt(4.0, 8)


def test_fit_amdahl_exact_data():
    fs = 0.05
    ps = [2, 4, 8, 16, 64]
    ss = [amdahl_speedup(p, fs) for p in ps]
    fit, rmse = fit_amdahl(ps, ss)
    assert fit == pytest.approx(fs, abs=1e-9)
    assert rmse < 1e-12


def test_fit_amdahl_noisy_data_recovers_ballpark():
    fs = 0.08
    ps = [2, 4, 8, 16, 32, 64]
    ss = [amdahl_speedup(p, fs) * f for p, f in zip(ps, (1.01, 0.98, 1.02, 0.99, 1.01, 0.97))]
    fit, rmse = fit_amdahl(ps, ss)
    assert fit == pytest.approx(fs, abs=0.03)
    assert rmse > 0


def test_fit_amdahl_clips_to_unit_interval():
    # Superlinear data would imply negative fs; result is clipped.
    fit, _ = fit_amdahl([2, 4], [3.0, 9.0])
    assert fit == 0.0


def test_fit_amdahl_insufficient():
    with pytest.raises(InsufficientDataError):
        fit_amdahl([4], [2.0])
    with pytest.raises(InsufficientDataError):
        fit_amdahl([1, 1], [1.0, 1.0])
