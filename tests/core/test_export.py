"""Profile/sweep/event (de)serialisation."""

import pytest

from repro.core.export import (
    events_to_csv,
    profile_from_json,
    profile_to_csv,
    profile_to_json,
    read_csv_rows,
    scaling_from_json,
    scaling_to_csv,
    scaling_to_json,
)
from repro.core.profile import ScalingProfile, SectionProfile
from repro.errors import AnalysisError
from repro.simmpi.sections_rt import section

from tests.conftest import mpi


def _workload(ctx):
    with section(ctx, "a"):
        ctx.compute(0.5)
        with section(ctx, "b"):
            ctx.compute(0.25 * (ctx.rank + 1))


@pytest.fixture(scope="module")
def run_result():
    return mpi(3, _workload)


@pytest.fixture(scope="module")
def profile(run_result):
    return SectionProfile.from_run(run_result, workload="toy")


def test_profile_json_roundtrip(profile):
    back = profile_from_json(profile_to_json(profile))
    assert back.n_ranks == profile.n_ranks
    assert back.walltime == profile.walltime
    assert back.meta == profile.meta
    assert back.paths() == profile.paths()
    for label in profile.labels():
        assert back.total(label) == profile.total(label)
        assert back.total(label, exclusive=True) == profile.total(
            label, exclusive=True
        )
        assert back.rank_times(label) == profile.rank_times(label)


def test_profile_json_rejects_unknown_version(profile):
    import json

    data = json.loads(profile_to_json(profile))
    data["version"] = 99
    with pytest.raises(AnalysisError):
        profile_from_json(json.dumps(data))


def test_scaling_json_roundtrip():
    sp = ScalingProfile("p")
    for p in (1, 2, 4):
        for _ in range(2):
            sp.add(p, SectionProfile.from_run(mpi(p, _workload)))
    back = scaling_from_json(scaling_to_json(sp))
    assert back.scale_name == "p"
    assert back.scales() == sp.scales()
    assert back.reps(2) == 2
    for p in sp.scales():
        assert back.mean_walltime(p) == sp.mean_walltime(p)
        assert back.mean_total("b", p) == sp.mean_total("b", p)
    assert back.speedup(4) == sp.speedup(4)


def test_profile_csv_has_row_per_path_rank(profile):
    rows = read_csv_rows(profile_to_csv(profile))
    # 3 paths (MAIN, a, a/b) × 3 ranks
    assert len(rows) == 9
    b_rows = [r for r in rows if r["label"] == "b"]
    assert {r["rank"] for r in b_rows} == {"0", "1", "2"}
    assert float(b_rows[2]["inclusive_s"]) == pytest.approx(0.75)


def test_csv_values_full_precision(profile):
    rows = read_csv_rows(profile_to_csv(profile))
    a0 = next(r for r in rows if r["label"] == "a" and r["rank"] == "0")
    assert float(a0["inclusive_s"]) == profile.rank_times("a")[0]


def test_scaling_csv_aggregates():
    sp = ScalingProfile("p")
    for p in (1, 2):
        sp.add(p, SectionProfile.from_run(mpi(p, _workload)))
    rows = read_csv_rows(scaling_to_csv(sp))
    labels = {r["label"] for r in rows}
    assert {"a", "b", "MPI_MAIN"} <= labels
    row = next(r for r in rows if r["p"] == "2" and r["label"] == "a")
    assert float(row["mean_total_s"]) == pytest.approx(sp.mean_total("a", 2))


def test_events_csv(run_result):
    rows = read_csv_rows(events_to_csv(run_result.section_events))
    assert len(rows) == len(run_result.section_events)
    assert rows[0]["kind"] == "enter"
    assert rows[0]["label"] == "MPI_MAIN"
    paths = {r["path"] for r in rows}
    assert "MPI_MAIN/a/b" in paths
