"""Partial speedup bounding (Equations 3–6)."""

import pytest

from repro.core.bounding import (
    SpeedupBounder,
    modeled_speedup,
    partial_bound,
    partial_bound_from_total,
)
from repro.errors import ModelDomainError


def test_paper_figure6_value():
    """B(64) = 5589.84 / (3025.44 / 64) = 118.25 — the paper's example."""
    b = partial_bound_from_total(5589.84, 3025.44, 64)
    assert b == pytest.approx(118.25, abs=0.01)


def test_paper_figure6_all_rows():
    rows = {64: (3025.44, 118.25), 80: (1288.64, 347.0),
            128: (14135.56, 50.61), 144: (2716.03, 296.3)}
    # The 80/144 rows in the paper (363.96 / 181.17) appear to use
    # slightly different totals; check the 64 and 128 rows exactly and
    # the others for order of magnitude.
    assert partial_bound_from_total(5589.84, 14135.56, 128) == pytest.approx(
        50.61, abs=0.02
    )
    for p, (tot, ref) in rows.items():
        b = partial_bound_from_total(5589.84, tot, p)
        assert b == pytest.approx(ref, rel=0.35)


def test_paper_knl_inflexion_bounds():
    """S(n=24) <= 882.48 / (43.84 + 64.29) = 8.16; Elements alone 13.72."""
    assert partial_bound(882.48, 43.84 + 64.29) == pytest.approx(8.16, abs=0.01)
    assert partial_bound(882.48, 64.29) == pytest.approx(13.72, abs=0.01)


def test_partial_bound_domain():
    with pytest.raises(ModelDomainError):
        partial_bound(-1.0, 1.0)
    with pytest.raises(ModelDomainError):
        partial_bound(1.0, 0.0)
    with pytest.raises(ModelDomainError):
        partial_bound_from_total(1.0, 1.0, 0)


def test_modeled_speedup_eq5():
    seq = {"a": 80.0, "b": 20.0}
    par = {"a": 10.0, "b": 15.0}
    assert modeled_speedup(seq, par) == pytest.approx(100.0 / 25.0)


def test_modeled_speedup_sections_may_differ():
    # HALO exists only in parallel runs; LOAD only matters sequentially.
    s = modeled_speedup({"compute": 100.0}, {"compute": 10.0, "halo": 10.0})
    assert s == pytest.approx(5.0)


def test_bound_entry_caps():
    b = SpeedupBounder(100.0)
    entry = b.bound("halo", 10, section_total_time=50.0)
    assert entry.avg_time == pytest.approx(5.0)
    assert entry.bound == pytest.approx(20.0)
    assert entry.caps(19.0)
    assert not entry.caps(22.0)
    assert entry.caps(20.5, slack=1.05)


def test_bound_table_sorted_by_p():
    b = SpeedupBounder(100.0)
    table = b.table("x", {16: 8.0, 4: 4.0, 8: 2.0})
    assert [e.p for e in table] == [4, 8, 16]


def test_binding_section_is_tightest():
    b = SpeedupBounder(100.0)
    entry = b.binding_section(10, {"fast": 1.0, "slow": 80.0})
    assert entry.label == "slow"
    assert entry.bound == pytest.approx(100.0 / 8.0)


def test_binding_section_empty_raises():
    with pytest.raises(ModelDomainError):
        SpeedupBounder(10.0).binding_section(2, {})


def test_verify_flags_violations():
    b = SpeedupBounder(100.0)
    measured = {4: 30.0}
    # section 'x' bounds speedup at 100/(8/4)=50 (ok); 'y' at 100/(20/4)=20 (violated)
    sections = {4: {"x": 8.0, "y": 20.0}}
    violations = b.verify(measured, sections)
    assert violations == {4: ["y"]}


def test_verify_clean_when_theorem_holds():
    b = SpeedupBounder(100.0)
    assert b.verify({4: 10.0}, {4: {"x": 8.0}}) == {}


def test_bounder_rejects_nonpositive_sequential():
    with pytest.raises(ModelDomainError):
        SpeedupBounder(0.0)
