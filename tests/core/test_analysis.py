"""ScalingAnalysis and HybridAnalysis drivers."""

import pytest

from repro.core.analysis import HybridAnalysis, ScalingAnalysis
from repro.core.profile import ScalingProfile, SectionProfile
from repro.errors import InsufficientDataError
from repro.simmpi.sections_rt import SectionEvent


def _synthetic_profile(n_ranks, walltime, sections):
    """Build a profile with given per-rank section times.

    ``sections``: label → per-rank time (same on every rank).
    """
    events = []
    for rank in range(n_ranks):
        t = 0.0
        for label, dt in sections.items():
            events.append(SectionEvent(rank, ("w",), label, "enter", t, (label,)))
            t += dt
            events.append(SectionEvent(rank, ("w",), label, "exit", t, (label,)))
    return SectionProfile.from_events(events, n_ranks, walltime)


def _amdahl_sweep(fs=0.1, total=100.0):
    """Synthetic workload: 'par' scales 1/p, 'ser' stays constant."""
    sp = ScalingProfile("p")
    for p in (1, 2, 4, 8, 16):
        par = total * (1 - fs) / p
        ser = total * fs
        sp.add(p, _synthetic_profile(p, par + ser, {"par": par, "ser": ser}))
    return sp


def test_breakdown_rows_percentages():
    an = ScalingAnalysis(_amdahl_sweep())
    rows = an.breakdown_rows(labels=["par", "ser"])
    assert rows[0]["p"] == 1
    assert rows[0]["par"] == pytest.approx(90.0)
    # serial share grows with p
    assert rows[-1]["ser"] > rows[0]["ser"]


def test_totals_and_averages_rows():
    an = ScalingAnalysis(_amdahl_sweep())
    totals = an.totals_rows(labels=["ser"])
    # cross-process serial total grows linearly with p
    assert totals[-1]["ser"] == pytest.approx(16 * 10.0)
    avgs = an.averages_rows(labels=["ser"])
    assert avgs[-1]["ser"] == pytest.approx(10.0)


def test_speedup_rows_match_amdahl():
    from repro.core.speedup import amdahl_speedup

    an = ScalingAnalysis(_amdahl_sweep(fs=0.1))
    rows = an.speedup_rows(bound_label="ser")
    for row in rows:
        assert row["speedup"] == pytest.approx(amdahl_speedup(row["p"], 0.1), rel=1e-9)
    # bound from the serial section: T_seq / ser_avg = 100/10 = 10 = Amdahl limit
    assert rows[-1]["bound"] == pytest.approx(10.0)


def test_bound_table_eq6_holds_on_synthetic_data():
    an = ScalingAnalysis(_amdahl_sweep(fs=0.2))
    entries = an.bound_table("ser")
    for e in entries:
        measured = an.profile.speedup(e.p)
        assert measured <= e.bound * 1.0001


def test_binding_section_identifies_serial_part_at_scale():
    an = ScalingAnalysis(_amdahl_sweep(fs=0.2))
    binding = an.binding_sections()
    # At low p the (still large) parallel section binds; once it shrinks
    # below the constant serial part, 'ser' becomes the binding section.
    assert binding[2].label == "par"
    assert binding[8].label == "ser"
    assert binding[16].label == "ser"
    assert binding[16].bound == pytest.approx(5.0)  # Amdahl limit 1/0.2


def test_karp_flatt_rows_recover_fraction():
    an = ScalingAnalysis(_amdahl_sweep(fs=0.1))
    for row in an.karp_flatt_rows():
        assert row["karp_flatt"] == pytest.approx(0.1, abs=1e-9)


def test_amdahl_fit_recovers_fraction():
    an = ScalingAnalysis(_amdahl_sweep(fs=0.15))
    fs, rmse = an.amdahl_fit()
    assert fs == pytest.approx(0.15, abs=1e-9)
    assert rmse < 1e-12


def test_inflexion_from_profile():
    sp = ScalingProfile("p")
    times = {1: 8.0, 2: 4.0, 4: 2.5, 8: 3.5}
    for p, t in times.items():
        sp.add(p, _synthetic_profile(p, t, {"s": t}))
    an = ScalingAnalysis(sp)
    pt = an.inflexion("s")
    assert pt is not None and pt.p == 4


# -- HybridAnalysis ------------------------------------------------------------

def _grid():
    h = HybridAnalysis()
    # walltime(p, t): MPI scales ideally, OMP saturates at 4.
    for p in (1, 8):
        for t in (1, 2, 4, 8):
            omp_factor = 1.0 / min(t, 4)
            wall = 100.0 / p * omp_factor
            h.add(p, t, _synthetic_profile(
                p, wall, {"LagrangeNodal": wall * 0.4, "LagrangeElements": wall * 0.6}
            ))
    return h


def test_hybrid_structure():
    h = _grid()
    assert h.process_counts() == [1, 8]
    assert h.thread_counts(1) == [1, 2, 4, 8]
    with pytest.raises(InsufficientDataError):
        h.runs(27, 1)


def test_hybrid_speedup_from_sequential():
    h = _grid()
    assert h.sequential_time() == pytest.approx(100.0)
    assert h.speedup(8, 4) == pytest.approx(32.0)


def test_hybrid_section_series():
    h = _grid()
    ts, times = h.section_series("LagrangeElements", 1)
    assert ts == [1, 2, 4, 8]
    assert times[0] == pytest.approx(60.0)
    assert times[2] == times[3]  # saturation


def test_hybrid_inflexion_detects_saturation():
    h = _grid()
    pt = h.inflexion("LagrangeElements", 1)
    assert pt is not None and pt.p == 4 and not pt.exhausted


def test_hybrid_bound_from_sections_paper_formula():
    h = _grid()
    # At (1, 4): Nodal 10, Elements 15 → bound = 100/25 = 4, measured 4.
    b = h.bound_from_sections(["LagrangeNodal", "LagrangeElements"], 1, 4)
    assert b == pytest.approx(4.0)
    assert h.speedup(1, 4) <= b * 1.0001


def test_hybrid_bound_at_inflexion():
    h = _grid()
    out = h.bound_at_inflexion("LagrangeElements", 1)
    assert out is not None
    pt, bound = out
    assert pt.p == 4
    assert bound == pytest.approx(100.0 / 15.0)


def test_hybrid_efficiency_and_best_configuration():
    h = _grid()
    # (8, 4): speedup 32 over 32 cores → efficiency 1.0 in the toy model
    assert h.efficiency(8, 4) == pytest.approx(1.0)
    assert h.efficiency(8, 8) == pytest.approx(0.5)
    p, t, wall = h.best_configuration()
    assert (p, t) == (8, 4) or (p, t) == (8, 8)  # both reach min walltime
    assert wall == pytest.approx(100.0 / 32.0)


def test_hybrid_efficiency_surface_rows():
    h = _grid()
    rows = h.efficiency_surface()
    assert len(rows) == 8
    assert all({"p", "threads", "cores", "walltime", "speedup", "efficiency"}
               <= set(r) for r in rows)
    row = next(r for r in rows if r["p"] == 1 and r["threads"] == 2)
    assert row["cores"] == 2 and row["speedup"] == pytest.approx(2.0)
