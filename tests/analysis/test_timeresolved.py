"""Unit semantics of the time-resolved efficiency pass.

Checks window construction, the POP identities (PE = LB * CommE and
PE = TE + SerE - 1, exactly, on real simulated runs), adaptive window
alignment across scales, rep merging, and the inflexion localizer on
hand-built interval records with a known answer.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    WindowConfig,
    intervals_from_run,
    merge_timelines,
    scenario_timeline,
    scenario_timeline_from_payload,
    timeline_from_intervals,
)
from repro.analysis.render import render_timeline, sparkline
from repro.errors import AnalysisError, InsufficientDataError
from repro.machine.catalog import knl_node
from repro.workloads.registry import get


def _run_record(workload: str, p: int, seed: int = 11):
    cls = get(workload)
    plugin = cls(cls.default_params())
    res = plugin.run(p, machine=knl_node(), seed=seed)
    plugin.check(res)
    return intervals_from_run(res, cls.COMM_SECTIONS)


# -- WindowConfig -------------------------------------------------------------


def test_window_config_rejects_bad_values():
    with pytest.raises(AnalysisError, match="strategy"):
        WindowConfig(strategy="hourly")
    with pytest.raises(AnalysisError, match="windows"):
        WindowConfig(windows=0)
    with pytest.raises(AnalysisError, match="integer"):
        WindowConfig(windows=2.5)
    with pytest.raises(AnalysisError, match="unknown"):
        WindowConfig.from_dict({"strategy": "fixed", "bins": 4})


def test_window_config_canonicalises_omitted_fields():
    assert WindowConfig.from_dict(None).to_dict() == \
        {"strategy": "fixed", "windows": 16}
    assert WindowConfig.from_dict({"windows": 4}).to_dict() == \
        {"strategy": "fixed", "windows": 4}


# -- windowing + metrics ------------------------------------------------------


def test_fixed_edges_tile_the_run_exactly():
    rec = _run_record("halo2d", 4)
    tl = timeline_from_intervals(rec, WindowConfig(windows=10))
    assert len(tl["rows"]) == 10
    assert tl["edges"][0] == 0.0
    assert tl["edges"][-1] == rec["walltime"]
    widths = [b - a for a, b in zip(tl["edges"], tl["edges"][1:])]
    assert max(widths) - min(widths) < 1e-12 * rec["walltime"]


def test_pop_identities_hold_exactly():
    for workload in ("halo2d", "bucketsort"):
        rec = _run_record(workload, 4)
        for cfg in (WindowConfig(windows=8), WindowConfig(strategy="adaptive")):
            tl = timeline_from_intervals(rec, cfg)
            for row in tl["rows"]:
                pe = row["parallel_efficiency"]
                if pe is None:
                    continue
                w = row["t1"] - row["t0"]
                # useful/comm/idle partition the window per rank.
                assert row["useful"] + row["comm"] + row["idle"] == \
                    pytest.approx(w, rel=1e-12)
                if row["load_balance"] is None:
                    # No rank did useful work: PE collapses to zero.
                    assert pe == 0.0
                else:
                    assert pe == pytest.approx(
                        row["load_balance"]
                        * row["communication_efficiency"], rel=1e-12)
                assert pe == pytest.approx(
                    row["transfer_efficiency"]
                    + row["serialization_efficiency"] - 1.0, rel=1e-9)


def test_adaptive_window_count_is_scale_invariant():
    counts = set()
    for p in (1, 2, 4, 8):
        rec = _run_record("halo2d", p)
        tl = timeline_from_intervals(rec, WindowConfig(strategy="adaptive"))
        counts.add(len(tl["rows"]))
        assert len(tl["rows"]) == len(rec["top_sequence"]) + 1
    assert len(counts) == 1


def test_zero_width_windows_report_none_efficiencies():
    # At p=1 the halo exchange is instantaneous, so adaptive edges
    # produce zero-width HALO windows that must stay in place (index
    # alignment across scales) with None metrics.
    rec = _run_record("halo2d", 1)
    tl = timeline_from_intervals(rec, WindowConfig(strategy="adaptive"))
    zero = [r for r in tl["rows"] if r["t1"] == r["t0"]]
    assert zero
    assert all(r["parallel_efficiency"] is None for r in zero)
    assert all(r["useful"] == 0.0 for r in zero)


def test_interval_record_is_json_round_trippable():
    rec = _run_record("sparsegraph", 4)
    assert json.loads(json.dumps(rec)) == rec
    # busy/comm partitions never exceed the run.
    for r in map(str, range(rec["n_ranks"])):
        for t0, t1 in rec["busy"][r] + rec["comm"][r]:
            assert 0.0 <= t0 <= t1 <= rec["walltime"]


def test_timeline_rejects_foreign_payloads():
    with pytest.raises(AnalysisError, match="interval record"):
        timeline_from_intervals({"schema": 999})


# -- rep merging --------------------------------------------------------------


def test_merge_timelines_averages_and_validates():
    recs = [_run_record("ringpipe", 4, seed=s) for s in (1, 2)]
    tls = [timeline_from_intervals(r, WindowConfig(windows=6)) for r in recs]
    merged = merge_timelines(tls)
    assert len(merged["rows"]) == 6
    k = 2
    want = (tls[0]["rows"][k]["useful"] + tls[1]["rows"][k]["useful"]) / 2
    assert merged["rows"][k]["useful"] == pytest.approx(want, rel=1e-12)
    with pytest.raises(AnalysisError, match="window structures"):
        merge_timelines([
            tls[0], timeline_from_intervals(recs[1], WindowConfig(windows=7)),
        ])
    with pytest.raises(InsufficientDataError):
        merge_timelines([])


# -- inflexion localizer ------------------------------------------------------


def _synthetic_record(section_times, walltime=10.0, n_ranks=2):
    """A record with one top-level section per window-aligned phase.

    ``section_times`` maps label -> per-phase duration; phases run
    back-to-back on every rank, so adaptive windows isolate them.
    """
    labels, busy = {}, {}
    t = 0.0
    seq = []
    per_label = {lab: [] for lab in section_times}
    for lab, dt in section_times.items():
        seq.append(lab)
        per_label[lab].append([t, t + dt])
        t += dt
    for lab, ivs in per_label.items():
        labels[lab] = {str(r): [list(iv) for iv in ivs]
                       for r in range(n_ranks)}
    busy_ivs = [[0.0, t]]
    return {
        "schema": 1,
        "n_ranks": n_ranks,
        "walltime": walltime,
        "comm_sections": [],
        "top_sequence": seq,
        "labels": labels,
        "busy": {str(r): [list(iv) for iv in busy_ivs]
                 for r in range(n_ranks)},
        "comm": {str(r): [] for r in range(n_ranks)},
    }


def test_localizer_reports_first_inflected_window():
    # COMPUTE keeps improving with p; LATE improves to p=4 then gets
    # *worse* at p=8 — a textbook inflexion, visible only in its window.
    by_scale = {
        2: [_synthetic_record({"COMPUTE": 4.0, "LATE": 2.0})],
        4: [_synthetic_record({"COMPUTE": 2.0, "LATE": 1.0})],
        8: [_synthetic_record({"COMPUTE": 1.0, "LATE": 3.0})],
    }
    out = scenario_timeline(
        by_scale, WindowConfig(strategy="adaptive"), rel_tol=0.02)
    sections = out["inflexion"]["sections"]
    late = sections["LATE"]
    assert late["run"]["status"] == "inflexion"
    assert late["run"]["p"] == 4 and late["run"]["exhausted"] is True
    assert late["first_window"] == 1          # the LATE window, not COMPUTE's
    assert sections["COMPUTE"]["run"]["status"] == "scaling"
    assert sections["COMPUTE"]["first_window"] is None
    assert 0.0 < late["first_fraction"] < 1.0


def test_localizer_needs_two_scales():
    out = scenario_timeline({4: [_synthetic_record({"A": 1.0})]})
    assert out["inflexion"]["note"] is not None
    assert out["inflexion"]["sections"] == {}


def test_payload_recompute_requires_interval_records():
    with pytest.raises(InsufficientDataError, match="interval"):
        scenario_timeline_from_payload({"kind": "scenario"})


# -- rendering ----------------------------------------------------------------


def test_sparkline_clamps_and_marks_gaps():
    assert sparkline([0.0, 0.5, 1.0, None, 2.0]) == "▁▅█·█"
    with pytest.raises(ValueError):
        sparkline([0.5], lo=1.0, hi=0.0)


def test_render_timeline_names_sections_and_inflexion():
    by_scale = {
        2: [_synthetic_record({"COMPUTE": 4.0, "LATE": 2.0})],
        8: [_synthetic_record({"COMPUTE": 1.0, "LATE": 3.0})],
    }
    text = render_timeline(scenario_timeline(
        by_scale, WindowConfig(strategy="adaptive"), rel_tol=0.02))
    assert "LATE" in text and "COMPUTE" in text
    assert "inflexion localization" in text
    assert "p=2" in text and "p=8" in text
