"""Timeline bit-identity: engines, tracing, scenario payloads.

The acceptance bar of the time-resolved pass: every timeline byte is a
pure function of virtual time, so the ``threadfree`` and ``threads``
engines — and tracing on vs off — must produce *identical JSON*, not
merely close numbers, at awkward scales (p=17 exercises non-power-of-two
collectives) over multiple communication shapes.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.analysis import WindowConfig, intervals_from_run, timeline_from_intervals
from repro.harness.scenario import run_scenario, scenario_payload
from repro.machine.catalog import nehalem_cluster
from repro.scenarios import ScenarioSpec
from repro.workloads.registry import get

WORKLOADS = ("halo2d", "bucketsort")
SCALES = (2, 8, 17)


def _timeline_json(workload: str, p: int, *, engine: str,
                   traced: bool) -> str:
    cls = get(workload)
    plugin = cls(cls.default_params())
    machine = nehalem_cluster(nodes=-(-p // 8), jitter=0.1)
    if traced:
        obs.start_trace("timeline-determinism", layer="test")
    try:
        res = plugin.run(p, machine=machine, seed=23, engine=engine)
    finally:
        if traced:
            obs.finish_trace()
    plugin.check(res)
    assert res.engine == engine
    rec = intervals_from_run(res, cls.COMM_SECTIONS)
    out = {
        "fixed": timeline_from_intervals(rec, WindowConfig(windows=12)),
        "adaptive": timeline_from_intervals(
            rec, WindowConfig(strategy="adaptive")),
    }
    return json.dumps(out, sort_keys=True)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("p", SCALES)
def test_timeline_bit_identical_across_engines(workload, p):
    tf = _timeline_json(workload, p, engine="threadfree", traced=False)
    th = _timeline_json(workload, p, engine="threads", traced=False)
    assert tf == th


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("p", SCALES)
def test_timeline_bit_identical_with_tracing(workload, p):
    off = _timeline_json(workload, p, engine="threadfree", traced=False)
    on = _timeline_json(workload, p, engine="threadfree", traced=True)
    assert off == on


def _scenario_payload_json(workload: str, engine: str) -> str:
    spec = ScenarioSpec.from_dict({
        "workload": workload,
        "machine": {"name": "nehalem", "nodes": 3},
        "process_counts": [2, 8, 17],
        "base_seed": 5,
        "engine": engine,
        "timeline": {"strategy": "adaptive"},
    })
    profile, metrics, intervals = run_scenario(spec, cache=None)
    payload = scenario_payload(spec, profile, metrics, intervals)
    # The scenario identity (content_key, spec echo) intentionally names
    # the engine; the *measured* blocks must not.
    return json.dumps(
        {"timeline": payload["timeline"], "intervals": payload["intervals"]},
        sort_keys=True)


@pytest.mark.parametrize("workload", WORKLOADS)
def test_scenario_timeline_blocks_engine_blind(workload):
    assert (_scenario_payload_json(workload, "threadfree")
            == _scenario_payload_json(workload, "threads"))
