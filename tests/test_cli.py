"""CLI entry point."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "fig5a" in out and "fig10" in out and "table7" in out


def test_unknown_experiment_rejected(capsys):
    assert main(["figX"]) == 1
    assert "unknown" in capsys.readouterr().err


def test_table7_quiet(capsys):
    assert main(["table7", "--quiet"]) == 0
    assert "table7: PASS" in capsys.readouterr().out


def test_table7_writes_artifact(tmp_path, capsys):
    assert main(["table7", "--out", str(tmp_path)]) == 0
    artifact = tmp_path / "table7.txt"
    assert artifact.exists()
    assert "lulesh_s" in artifact.read_text()


def test_parser_defaults():
    args = build_parser().parse_args(["fig5a"])
    assert args.reps == 2 and args.out is None and not args.quiet


def test_module_invocation_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "list"],
        capture_output=True, text=True, timeout=120,
        cwd=str(pathlib.Path(__file__).resolve().parents[1]),
    )
    assert proc.returncode == 0
    assert "fig9" in proc.stdout


@pytest.mark.slow
def test_fig9_small_run(capsys):
    """A reduced Lulesh grid through the CLI end to end."""
    assert main(["fig9", "--steps", "3", "--reps", "2", "--quiet"]) == 0
    assert "fig9: PASS" in capsys.readouterr().out


def test_baseline_save_and_compare(tmp_path, capsys):
    assert main(["table7", "--quiet", "--save-baseline", str(tmp_path)]) == 0
    assert (tmp_path / "table7.baseline.json").exists()
    assert main(["table7", "--quiet", "--baseline", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "baseline OK" in out


def test_baseline_missing_fails(tmp_path, capsys):
    assert main(["table7", "--quiet", "--baseline", str(tmp_path)]) == 1
    assert "no baseline" in capsys.readouterr().err


def test_parser_jobs_and_cache_defaults():
    args = build_parser().parse_args(["fig5a"])
    assert args.jobs is None and args.cache is False
    args = build_parser().parse_args(["fig5a", "--jobs", "4", "--cache"])
    assert args.jobs == 4 and args.cache


def test_cache_stats_subcommand(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out and "entries:       0" in out


def test_cache_clear_subcommand(tmp_path, capsys):
    from repro.harness.cache import RunCache, run_key

    cache = RunCache(root=tmp_path)
    cache.put(run_key(p=1, seed=0), {"x": 1})
    assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
    assert "removed 1 entries" in capsys.readouterr().out
    assert cache.stats()["entries"] == 0


def test_cache_subcommand_rejects_unknown_action():
    with pytest.raises(SystemExit):
        main(["cache", "shrink"])


# -- robustness flags --------------------------------------------------------


def test_parser_robustness_defaults():
    args = build_parser().parse_args(["fig5a"])
    assert args.faults is None and args.on_error == "raise"
    assert args.retries == 0 and args.timeout is None


def test_unreadable_fault_plan_is_usage_error(tmp_path, capsys):
    assert main(["table7", "--faults", str(tmp_path / "nope.json")]) == 1
    assert "cannot read fault plan" in capsys.readouterr().err


def test_malformed_fault_plan_is_usage_error(tmp_path, capsys):
    plan = tmp_path / "plan.json"
    plan.write_text('{"faults": [{"kind": "meteor"}]}')
    assert main(["table7", "--faults", str(plan)]) == 1
    assert "unknown kind" in capsys.readouterr().err


def test_invalid_retries_and_timeout_are_usage_errors(capsys):
    assert main(["table7", "--retries", "-1"]) == 1
    assert "--retries" in capsys.readouterr().err
    assert main(["table7", "--timeout", "0"]) == 1
    assert "--timeout" in capsys.readouterr().err


def test_skipped_sweep_points_exit_nonzero(monkeypatch, tmp_path, capsys):
    """A crashing point under --on-error skip completes the sweep, is
    reported exactly once, and turns the exit code nonzero."""
    from repro.faults import FaultPlan, RankCrash
    from repro.harness.sweeps import ConvolutionSweep
    from repro.machine.catalog import nehalem_cluster
    from repro.workloads.convolution import ConvolutionConfig

    tiny = ConvolutionSweep(
        config=ConvolutionConfig.tiny(steps=3),
        machine=nehalem_cluster(nodes=1),
        process_counts=(1, 2, 4),
        reps=1,
    )
    monkeypatch.setattr("repro.cli.default_convolution_sweep", lambda: tiny)
    plan = tmp_path / "plan.json"
    plan.write_text(FaultPlan((RankCrash(rank=3),)).to_json())

    rc = main(["fig5a", "--quiet", "--reps", "1",
               "--faults", str(plan), "--on-error", "skip"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "1 failed point(s)" in err
    assert "convolution p=4 rep=0" in err


def test_fault_plan_flows_into_the_sweep(monkeypatch, capsys, tmp_path):
    """--faults without failures still runs clean and exits 0."""
    from repro.faults import FaultPlan, StragglerRank
    from repro.harness.sweeps import ConvolutionSweep
    from repro.machine.catalog import nehalem_cluster
    from repro.workloads.convolution import ConvolutionConfig

    tiny = ConvolutionSweep(
        config=ConvolutionConfig.tiny(steps=3),
        machine=nehalem_cluster(nodes=1),
        process_counts=(1, 2, 4),
        reps=1,
    )
    monkeypatch.setattr("repro.cli.default_convolution_sweep", lambda: tiny)
    plan = tmp_path / "plan.json"
    plan.write_text(
        FaultPlan((StragglerRank(rank=0, factor=2.0),)).to_json()
    )
    rc = main(["fig5a", "--quiet", "--reps", "1", "--faults", str(plan),
               "--on-error", "skip", "--timeout", "60"])
    out = capsys.readouterr().out
    assert "fig5a:" in out
    assert rc in (0, 2)  # no usage error; pass/fail depends on the check


# -- service subcommands (serve / submit / status) ---------------------------


def test_serve_rejects_bad_workers(capsys):
    assert main(["serve", "--workers", "0"]) == 1
    assert "--workers" in capsys.readouterr().err


def test_submit_unreadable_spec_is_usage_error(tmp_path, capsys):
    assert main(["submit", str(tmp_path / "missing.json")]) == 1
    assert "cannot read spec" in capsys.readouterr().err


def test_submit_unreachable_server_is_usage_error(tmp_path, capsys):
    from tests.service.conftest import tiny_conv_spec

    spec = tmp_path / "job.json"
    spec.write_text(__import__("json").dumps(tiny_conv_spec()))
    rc = main(["submit", str(spec), "--url", "http://127.0.0.1:9"])
    assert rc == 1
    assert "cannot reach" in capsys.readouterr().err


def test_status_unreachable_server_is_usage_error(capsys):
    assert main(["status", "--url", "http://127.0.0.1:9"]) == 1
    assert "cannot reach" in capsys.readouterr().err


def test_submit_and_status_against_live_server(tmp_path, capsys):
    """The thin clients drive a real server end to end."""
    import json

    from repro.service.api import ServiceApp
    from repro.service.server import ServiceServer

    from tests.service.conftest import tiny_conv_spec

    server = ServiceServer(ServiceApp(cache_dir=tmp_path / "cache", workers=1))
    server.start()
    try:
        spec = tmp_path / "job.json"
        spec.write_text(json.dumps(tiny_conv_spec()))
        rc = main(["submit", str(spec), "--url", server.url, "--wait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "done" in out
        assert "convolution p=" in out  # streamed progress lines
        job_id = out.split()[1].rstrip(":")

        assert main(["status", job_id, "--url", server.url]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["status"] == "done"

        # a bare `status` lists jobs; a resubmit is a registry hit
        assert main(["status", "--url", server.url]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert any(j["job_id"] == job_id for j in listing["stored"])
        assert main(["submit", str(spec), "--url", server.url]) == 0
        assert "served from registry" in capsys.readouterr().out

        # unknown job id is a usage error
        assert main(["status", "0" * 64, "--url", server.url]) == 1
    finally:
        server.stop()


# -- workload / scenario subcommands -----------------------------------------


def test_workloads_list_names_the_whole_zoo(capsys):
    assert main(["workloads", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("convolution", "lulesh", "lbm", "halo2d", "taskfarm",
                 "ringpipe", "bucketsort", "sparsegraph"):
        assert name in out


def test_workloads_list_domain_filter_and_json(capsys):
    import json

    assert main(["workloads", "list", "--domain", "zoo", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {r["name"] for r in rows} == {
        "halo2d", "taskfarm", "ringpipe", "bucketsort", "sparsegraph"}
    assert all(r["domain"] == "zoo" for r in rows)


def _scenario_doc(**overrides):
    doc = {
        "workload": "ringpipe",
        "params": {"rounds": 1, "blocklen": 16},
        "machine": {"name": "laptop", "cores": 4},
        "process_counts": [1, 2],
        "base_seed": 11,
    }
    doc.update(overrides)
    return doc


def test_scenarios_validate_good_spec_exits_zero(tmp_path, capsys):
    import json

    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_scenario_doc()))
    assert main(["scenarios", "validate", str(path)]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "ringpipe" in out and "content_key" in out


def test_scenarios_validate_bad_spec_exits_one(tmp_path, capsys):
    import json

    good = tmp_path / "good.json"
    good.write_text(json.dumps(_scenario_doc()))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_scenario_doc(proces_counts=[1])))
    assert main(["scenarios", "validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err
    # one bad spec poisons the whole batch
    assert main(["scenarios", "validate", str(good), str(bad)]) == 1


def test_scenarios_validate_missing_file_exits_one(tmp_path, capsys):
    assert main(["scenarios", "validate", str(tmp_path / "nope.json")]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_run_scenario_end_to_end(tmp_path, capsys):
    import json

    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_scenario_doc()))
    out_file = tmp_path / "result.json"
    rc = main(["run", "--scenario", str(path), "--out", str(out_file)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scenario ringpipe" in out
    payload = json.loads(out_file.read_text())
    assert payload["kind"] == "scenario"
    assert payload["summary"]["scales"] == [1, 2]


def test_run_scenario_bad_spec_is_usage_error(tmp_path, capsys):
    import json

    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_scenario_doc(workload="nope")))
    assert main(["run", "--scenario", str(path)]) == 1
    assert "unknown workload" in capsys.readouterr().err


def test_run_scenario_crash_fault_exits_run_failure(tmp_path, capsys):
    import json

    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_scenario_doc(
        process_counts=[2],
        faults={"seed": 1, "faults": [
            {"kind": "crash", "rank": 0, "at_time": 0.0}]})))
    assert main(["run", "--scenario", str(path)]) == 2
    assert "RankFailedError" in capsys.readouterr().err


def test_submit_failed_job_exits_run_failure(tmp_path, capsys, monkeypatch):
    import json

    import repro.service.scheduler as scheduler_mod
    from repro.service.api import ServiceApp
    from repro.service.server import ServiceServer

    from tests.service.conftest import tiny_conv_spec

    def boom(spec, **kwargs):
        raise RuntimeError("simulated worker failure")

    monkeypatch.setattr(scheduler_mod, "execute_job", boom)
    server = ServiceServer(ServiceApp(cache_dir=tmp_path / "cache", workers=1))
    server.start()
    try:
        spec = tmp_path / "job.json"
        spec.write_text(json.dumps(tiny_conv_spec()))
        rc = main(["submit", str(spec), "--url", server.url, "--wait"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "failed" in captured.out
        assert "RuntimeError" in captured.err
    finally:
        server.stop()
