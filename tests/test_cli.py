"""CLI entry point."""

import pathlib
import subprocess
import sys

import pytest

from repro.cli import build_parser, main


def test_list_prints_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "fig5a" in out and "fig10" in out and "table7" in out


def test_unknown_experiment_rejected(capsys):
    assert main(["figX"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_table7_quiet(capsys):
    assert main(["table7", "--quiet"]) == 0
    assert "table7: PASS" in capsys.readouterr().out


def test_table7_writes_artifact(tmp_path, capsys):
    assert main(["table7", "--out", str(tmp_path)]) == 0
    artifact = tmp_path / "table7.txt"
    assert artifact.exists()
    assert "lulesh_s" in artifact.read_text()


def test_parser_defaults():
    args = build_parser().parse_args(["fig5a"])
    assert args.reps == 2 and args.out is None and not args.quiet


def test_module_invocation_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "list"],
        capture_output=True, text=True, timeout=120,
        cwd=str(pathlib.Path(__file__).resolve().parents[1]),
    )
    assert proc.returncode == 0
    assert "fig9" in proc.stdout


@pytest.mark.slow
def test_fig9_small_run(capsys):
    """A reduced Lulesh grid through the CLI end to end."""
    assert main(["fig9", "--steps", "3", "--reps", "2", "--quiet"]) == 0
    assert "fig9: PASS" in capsys.readouterr().out


def test_baseline_save_and_compare(tmp_path, capsys):
    assert main(["table7", "--quiet", "--save-baseline", str(tmp_path)]) == 0
    assert (tmp_path / "table7.baseline.json").exists()
    assert main(["table7", "--quiet", "--baseline", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "baseline OK" in out


def test_baseline_missing_fails(tmp_path, capsys):
    assert main(["table7", "--quiet", "--baseline", str(tmp_path)]) == 1
    assert "no baseline" in capsys.readouterr().err


def test_parser_jobs_and_cache_defaults():
    args = build_parser().parse_args(["fig5a"])
    assert args.jobs is None and args.cache is False
    args = build_parser().parse_args(["fig5a", "--jobs", "4", "--cache"])
    assert args.jobs == 4 and args.cache


def test_cache_stats_subcommand(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out and "entries:       0" in out


def test_cache_clear_subcommand(tmp_path, capsys):
    from repro.harness.cache import RunCache, run_key

    cache = RunCache(root=tmp_path)
    cache.put(run_key(p=1, seed=0), {"x": 1})
    assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
    assert "removed 1 entries" in capsys.readouterr().out
    assert cache.stats()["entries"] == 0


def test_cache_subcommand_rejects_unknown_action():
    with pytest.raises(SystemExit):
        main(["cache", "shrink"])
