"""ScenarioSpec parsing, canonicalisation and content addressing.

The content key is the contract the whole caching story hangs on: two
specs that mean the same thing must hash the same regardless of JSON
key order or spelled-out defaults, and every result-shaping difference
(params, machine, sweep dims, faults, engine) must change the hash.
``wall_timeout`` is execution policy and must not.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import SCENARIO_SCHEMA_VERSION, ScenarioSpec, ScenarioSpecError

BASE = {
    "workload": "halo2d",
    "params": {"ny": 16, "nx": 16, "steps": 3},
    "machine": {"name": "laptop", "cores": 4},
    "process_counts": [1, 2, 4],
    "base_seed": 11,
}


def _spec(**overrides):
    data = {**BASE, **overrides}
    return ScenarioSpec.from_dict(data)


# -- hashing stability ------------------------------------------------------


def test_key_order_does_not_change_content_key():
    a = _spec()
    shuffled = json.loads(json.dumps(
        {k: BASE[k] for k in reversed(list(BASE))}))
    b = ScenarioSpec.from_dict(shuffled)
    assert a.content_key == b.content_key


def test_spelled_out_defaults_share_the_key():
    a = _spec()
    b = _spec(
        schema=SCENARIO_SCHEMA_VERSION,
        reps=1,
        threads=1,
        ranks_per_node=None,
        compute_jitter=0.0,
        noise_floor=0.0,
        faults=None,
        engine=None,
        wall_timeout=None,
    )
    assert a.content_key == b.content_key


def test_defaulted_params_share_the_key():
    defaults = ScenarioSpec.from_dict(
        {**BASE, "workload": "ringpipe", "params": {}})
    spelled = ScenarioSpec.from_dict({
        **BASE,
        "workload": "ringpipe",
        "params": {"rounds": 2, "blocklen": 256, "stage_flops": 5e5},
    })
    assert defaults.content_key == spelled.content_key


def test_process_count_order_is_canonicalised():
    a = _spec(process_counts=[4, 1, 2])
    assert a.process_counts == (1, 2, 4)
    assert a.content_key == _spec().content_key


@pytest.mark.parametrize("field,value", [
    ("params", {"ny": 16, "nx": 16, "steps": 4}),
    ("machine", {"name": "laptop", "cores": 8}),
    ("process_counts", [1, 2]),
    ("reps", 2),
    ("base_seed", 12),
    ("compute_jitter", 0.05),
    ("noise_floor", 1e-7),
    ("faults", {"seed": 3, "faults": [
        {"kind": "straggler", "rank": 0, "factor": 2.0}]}),
    ("engine", "threads"),
])
def test_result_shaping_fields_change_the_key(field, value):
    assert _spec().content_key != _spec(**{field: value}).content_key


def test_wall_timeout_is_execution_policy_not_identity():
    assert _spec().content_key == _spec(wall_timeout=30.0).content_key


# -- round trips ------------------------------------------------------------


def test_to_dict_round_trips_exactly():
    spec = _spec(engine="threadfree", reps=2, wall_timeout=10.0,
                 faults={"seed": 3, "faults": [
                     {"kind": "straggler", "rank": 0, "factor": 2.0}]})
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again.to_dict() == spec.to_dict()
    assert again.content_key == spec.content_key


def test_json_round_trip_and_load(tmp_path):
    spec = _spec()
    assert ScenarioSpec.from_json(spec.to_json()).content_key == spec.content_key
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json(indent=2))
    assert ScenarioSpec.load(path).content_key == spec.content_key


# -- eager, loud validation -------------------------------------------------


@pytest.mark.parametrize("mutation,match", [
    ({"proces_counts": [1]}, "unknown scenario fields"),
    ({"schema": 999}, "unsupported scenario schema"),
    ({"workload": "nope"}, "unknown workload"),
    ({"workload": None}, "needs workload"),
    ({"params": {"ny": -1}}, "invalid params"),
    ({"params": {"bogus": 1}}, "invalid params"),
    ({"machine": None}, "needs machine"),
    ({"machine": {"name": "warp-drive"}}, "invalid machine block"),
    ({"machine": {"name": "laptop", "nodes": 2}}, "invalid machine block"),
    ({"process_counts": []}, "non-empty list"),
    ({"process_counts": [1, 1, 2]}, "repeat a scale"),
    ({"process_counts": [1, 2.5]}, "must be an integer"),
    ({"reps": 0}, "reps must be >= 1"),
    ({"threads": 0}, "threads must be >= 1"),
    ({"ranks_per_node": 0}, "ranks_per_node must be >= 1"),
    ({"compute_jitter": -0.1}, "must be >= 0"),
    ({"faults": {"seed": 1, "faults": [{"kind": "gremlin"}]}},
     "invalid fault plan"),
    ({"engine": "steam"}, "steam"),
    ({"wall_timeout": 0.0}, "wall_timeout must be positive"),
])
def test_bad_specs_fail_eagerly(mutation, match):
    with pytest.raises(ScenarioSpecError, match=match):
        ScenarioSpec.from_dict({**BASE, **mutation})


def test_non_object_specs_are_rejected():
    with pytest.raises(ScenarioSpecError, match="must be an object"):
        ScenarioSpec.from_dict([1, 2, 3])
    with pytest.raises(ScenarioSpecError, match="not valid JSON"):
        ScenarioSpec.from_json("{nope")


def test_scale_the_workload_cannot_run_at_is_rejected():
    with pytest.raises(ScenarioSpecError):
        ScenarioSpec.from_dict({
            **BASE,
            "workload": "lulesh",
            "params": {},
            "process_counts": [1, 3],  # lulesh wants cube counts
        })


def test_missing_spec_file_is_a_spec_error(tmp_path):
    with pytest.raises(ScenarioSpecError, match="cannot read"):
        ScenarioSpec.load(tmp_path / "absent.json")
