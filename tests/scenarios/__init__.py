"""Tests for the declarative scenario spec subsystem."""
