"""Scenario runs through the content-addressed run cache.

Warm reruns must be pure cache replays (zero fresh simulations) and
bit-identical to the cold run; point keys must be shared across engines
(they are bit-identical by contract) while the scenario-level
``content_key`` still distinguishes them.
"""

from __future__ import annotations

import pytest

from repro.core.export import scaling_to_json
from repro.harness.cache import RunCache
from repro.harness.scenario import (
    run_scenario,
    scenario_payload,
    scenario_point_key,
)
from repro.scenarios import ScenarioSpec

BASE = {
    "workload": "ringpipe",
    "params": {"rounds": 1, "blocklen": 16},
    "machine": {"name": "laptop", "cores": 4},
    "process_counts": [1, 2, 4],
    "reps": 2,
    "base_seed": 11,
}


def _spec(**overrides):
    return ScenarioSpec.from_dict({**BASE, **overrides})


def test_point_keys_are_stable_and_engine_blind():
    spec = _spec()
    assert (scenario_point_key(spec, 2, 0, 11)
            == scenario_point_key(_spec(), 2, 0, 11))
    # Engine choice must NOT move run-cache points: both engines are
    # bit-identical, so either may serve the other's cached results.
    assert (scenario_point_key(spec, 2, 0, 11)
            == scenario_point_key(_spec(engine="threads"), 2, 0, 11))
    # ... but anything result-shaping must.
    assert (scenario_point_key(spec, 2, 0, 11)
            != scenario_point_key(_spec(noise_floor=1e-7), 2, 0, 11))
    assert (scenario_point_key(spec, 2, 0, 11)
            != scenario_point_key(spec, 2, 1, 12))


def test_warm_rerun_is_zero_simulation_and_bit_identical(tmp_path):
    cache = RunCache(tmp_path / "cache")
    spec = _spec()
    cold_profile, cold_metrics, cold_iv = run_scenario(spec, cache=cache)
    n_points = len(spec.process_counts) * spec.reps
    assert cache.stores == n_points and cache.hits == 0

    warm_cache = RunCache(tmp_path / "cache")
    warm_profile, warm_metrics, warm_iv = run_scenario(spec, cache=warm_cache)
    assert warm_cache.hits == n_points
    assert warm_cache.stores == 0          # zero fresh simulations
    assert scaling_to_json(warm_profile) == scaling_to_json(cold_profile)
    assert warm_metrics == cold_metrics
    assert warm_iv == cold_iv                # interval records round-trip
    assert (scenario_payload(spec, warm_profile, warm_metrics, warm_iv)
            == scenario_payload(spec, cold_profile, cold_metrics, cold_iv))


def test_other_engine_reuses_cached_points(tmp_path):
    cache = RunCache(tmp_path / "cache")
    tf_profile, tf_metrics, tf_iv = run_scenario(
        _spec(engine="threadfree"), cache=cache)
    threads = _spec(engine="threads")
    th_profile, th_metrics, th_iv = run_scenario(
        threads, cache=RunCache(tmp_path / "cache"))
    assert cache.stores == len(BASE["process_counts"]) * BASE["reps"]
    assert scaling_to_json(th_profile) == scaling_to_json(tf_profile)
    assert th_metrics == tf_metrics
    assert th_iv == tf_iv
    # The scenario identity still distinguishes the engines.
    assert (_spec(engine="threads").content_key
            != _spec(engine="threadfree").content_key)


def test_result_shaping_change_misses_the_cache(tmp_path):
    cache = RunCache(tmp_path / "cache")
    run_scenario(_spec(), cache=cache)
    shifted = RunCache(tmp_path / "cache")
    run_scenario(_spec(base_seed=12), cache=shifted)
    assert shifted.hits == 0
    assert shifted.stores == len(BASE["process_counts"]) * BASE["reps"]


def test_cached_and_uncached_runs_agree(tmp_path):
    spec = _spec(compute_jitter=0.03, noise_floor=1e-7)
    cached_profile, cached_metrics, cached_iv = run_scenario(
        spec, cache=RunCache(tmp_path / "cache"))
    bare_profile, bare_metrics, bare_iv = run_scenario(spec, cache=None)
    assert scaling_to_json(bare_profile) == scaling_to_json(cached_profile)
    assert bare_metrics == cached_metrics
    assert bare_iv == cached_iv


def test_parallel_run_matches_serial(tmp_path):
    spec = _spec()
    serial = run_scenario(spec, cache=None, jobs=1)
    para = run_scenario(spec, cache=None, jobs=2)
    assert scaling_to_json(para[0]) == scaling_to_json(serial[0])
    assert para[1] == serial[1]
    assert para[2] == serial[2]
